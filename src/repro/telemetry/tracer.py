"""Span-based tracer with a module-level no-op fast path.

A *span* is one named, timed region of execution with structured
attributes: ``with span("kernel", format="hb-csf", mode=0): ...``.  Spans
nest — each thread keeps its own stack, so a span opened inside another
becomes its child — and cross-thread parentage is explicit: the dispatcher
captures :func:`current_span_id` before submitting work to the pool and
passes it as ``parent=`` to the worker-side spans, which is how a trace of
the threaded backend reconstructs per-worker timelines under the kernel
span that launched them.

Tracing is **off by default** and costs nearly nothing while off:
:func:`span` returns a shared no-op singleton after a single global check —
no allocation, no timestamps, no locking.  It is enabled by

* ``REPRO_TRACE=1`` (writes :data:`DEFAULT_TRACE_FILE` in the cwd),
* ``REPRO_TRACE_FILE=<path>`` (writes there), or
* the API: :func:`enable` / :func:`trace_to` / :func:`capture`.

Enabled spans are emitted as JSONL records (:mod:`repro.telemetry.export`)
streamed to the trace file as they close — a crashed process still leaves a
readable trace — with monotonic ``time.perf_counter`` timestamps shared by
every thread of the process.

:class:`stage` is the dispatch-layer instrumentation primitive: it always
feeds the counter registry (``<name>.count`` / ``<name>.seconds``, on
whose deltas :mod:`repro.bench` builds its stage breakdowns) and
additionally emits a span when tracing is enabled.  Two further opt-ins
hang off it, both a single attribute check while off:

* histogram recording (``REPRO_HISTOGRAMS=1`` /
  :func:`repro.telemetry.counters.enable_histograms`) feeds each stage's
  duration into a ``<name>.duration`` histogram, from which p50/p95/p99
  are derivable;
* memory tracking (``REPRO_TRACE_MEM=1`` /
  :func:`enable_memory_tracking`) records each stage's tracemalloc
  allocation peak as a ``<name>.alloc_peak_bytes`` high-water gauge.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
import tracemalloc
from contextlib import contextmanager
from pathlib import Path

from repro.telemetry.counters import (
    HIST_STATE,
    counter_add_stage,
    counters_snapshot,
    gauge_max,
    gauges_snapshot,
    histogram_observe,
    histograms_snapshot,
)
from repro.telemetry.export import TRACE_SCHEMA_VERSION
from repro.util.errors import ValidationError

__all__ = [
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "TRACE_MEM_ENV",
    "DEFAULT_TRACE_FILE",
    "Tracer",
    "span",
    "stage",
    "current_span_id",
    "tracing_enabled",
    "enable",
    "disable",
    "disabled",
    "trace_to",
    "capture",
    "get_tracer",
    "memory_tracking_enabled",
    "enable_memory_tracking",
    "disable_memory_tracking",
    "init_mem_from_env",
]

#: truthy values of this variable turn tracing on process-wide.
TRACE_ENV = "REPRO_TRACE"

#: trace-file override; setting it implies tracing unless REPRO_TRACE=0.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

#: truthy values enable tracemalloc-based per-stage allocation peaks.
TRACE_MEM_ENV = "REPRO_TRACE_MEM"

#: file written when tracing is enabled without an explicit path.
DEFAULT_TRACE_FILE = "repro-trace.jsonl"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")

_next_span_id = itertools.count(1).__next__

_STACKS = threading.local()


def _stack() -> list:
    stack = getattr(_STACKS, "spans", None)
    if stack is None:
        stack = _STACKS.spans = []
    return stack


def _json_safe(value):
    """Coerce one attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class Tracer:
    """Collects finished spans into a JSONL file and/or an in-memory list.

    ``path`` streams one JSON record per finished span (plus a ``meta``
    header and ``counters`` / ``caches`` footers written by
    :meth:`close`); ``buffer`` appends the same record dicts to a caller
    list (used by :func:`capture` and the tests).  At least one sink must
    be given.  Emission is serialised by one lock — pool workers finish
    spans concurrently.
    """

    def __init__(self, path: str | os.PathLike | None = None,
                 buffer: list | None = None):
        if path is None and buffer is None:
            raise ValidationError("Tracer needs a path and/or a buffer sink")
        self.path = Path(path) if path is not None else None
        self.buffer = buffer
        self._lock = threading.Lock()
        self._file = None
        self._closed = False
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")
            self._emit({
                "type": "meta",
                "schema": TRACE_SCHEMA_VERSION,
                "pid": os.getpid(),
                "clock": "perf_counter",
                "created_at": time.time(),
            })

    # ------------------------------------------------------------------ #
    def _emit(self, record: dict) -> None:
        with self._lock:
            if self._closed:
                return
            if self.buffer is not None:
                self.buffer.append(record)
            if self._file is not None:
                self._file.write(json.dumps(record))
                self._file.write("\n")
                self._file.flush()

    def emit_span(self, span_id: int, parent: int | None, name: str,
                  t0: float, t1: float, attrs: dict) -> None:
        self._emit({
            "type": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "t0": t0,
            "t1": t1,
            "dur": t1 - t0,
            "thread": threading.current_thread().name,
            "attrs": {k: _json_safe(v) for k, v in attrs.items()},
        })

    def close(self) -> None:
        """Write the counter / cache-stats footers and release the file."""
        if self._closed:
            return
        footer = {
            "type": "counters",
            "values": counters_snapshot(),
            "gauges": gauges_snapshot(),
        }
        histograms = histograms_snapshot()
        if histograms:
            footer["histograms"] = histograms
        self._emit(footer)
        self._emit({"type": "caches", **_cache_stats_safe()})
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None


def _cache_stats_safe() -> dict:
    """Live plan/decision cache stats; degrades to empty on import trouble."""
    stats: dict = {}
    try:
        from repro.formats import plan_cache_stats

        stats["plan_cache"] = plan_cache_stats()
    except Exception:  # pragma: no cover - defensive (partial interpreter)
        stats["plan_cache"] = {}
    try:
        from repro.tune import decision_cache_stats

        stats["decision_cache"] = decision_cache_stats()
    except Exception:  # pragma: no cover - defensive
        stats["decision_cache"] = {}
    return stats


# --------------------------------------------------------------------- #
# the global tracer slot and the no-op fast path
# --------------------------------------------------------------------- #
_TRACER: Tracer | None = None
_TRACER_LOCK = threading.Lock()


class _NoopSpan:
    """Shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()
    id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _LiveSpan:
    """A real span: pushed on the thread's stack, emitted on exit."""

    __slots__ = ("_tracer", "name", "parent", "attrs", "id", "_t0")

    def __init__(self, tracer: Tracer, name: str, parent, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.parent = getattr(parent, "id", parent)
        self.attrs = attrs
        self.id = None
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        stack = _stack()
        if self.parent is None and stack:
            self.parent = stack[-1].id
        self.id = _next_span_id()
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - unbalanced exit safety
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer.emit_span(self.id, self.parent, self.name,
                               self._t0, t1, self.attrs)
        return False

    def set(self, **attrs) -> "_LiveSpan":
        self.attrs.update(attrs)
        return self


def span(name: str, *, parent=None, **attrs):
    """A context manager timing one named region with attributes.

    While tracing is disabled this returns a shared no-op singleton after
    one global check — the disabled fast path allocates nothing.  When
    enabled, the span records monotonic enter/exit timestamps, the current
    thread name, and its parent: the innermost open span on this thread,
    or the explicit ``parent=`` (a span handle or id) for spans that run
    on pool threads.
    """
    tracer = _TRACER
    if tracer is None:
        return _NOOP
    return _LiveSpan(tracer, name, parent, attrs)


# --------------------------------------------------------------------- #
# opt-in tracemalloc memory tracking
# --------------------------------------------------------------------- #
class _MemState:
    """Process-wide on/off flag for per-stage allocation tracking."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


MEM_STATE = _MemState()


def memory_tracking_enabled() -> bool:
    """Whether per-stage allocation peaks are being recorded."""
    return MEM_STATE.enabled


def enable_memory_tracking() -> None:
    """Start tracemalloc (if needed) and record per-stage allocation peaks.

    Every :class:`stage` then sets a ``<name>.alloc_peak_bytes`` gauge to
    the high-water mark of the stage's peak traced allocation above its
    entry point.  Tracemalloc multiplies allocation cost several-fold —
    this is a diagnostic mode, not a production default.
    """
    if not tracemalloc.is_tracing():
        tracemalloc.start()
    MEM_STATE.enabled = True


def disable_memory_tracking() -> None:
    """Stop recording allocation peaks and stop tracemalloc."""
    MEM_STATE.enabled = False
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def _mem_stack() -> list:
    stack = getattr(_STACKS, "mem", None)
    if stack is None:
        stack = _STACKS.mem = []
    return stack


def _mem_enter() -> list | None:
    """Open one allocation-tracking window: ``[entry_current, max_peak]``.

    The peak register is process-global, so before resetting it for this
    stage the current peak is folded into every enclosing open window —
    nesting loses nothing.  Windows are per-thread; with concurrent
    threads allocating, a stage's peak includes other threads' traffic
    (tracemalloc cannot attribute per thread), which is the honest
    process-wide reading.
    """
    if not tracemalloc.is_tracing():  # disabled mid-flight
        return None
    current, peak = tracemalloc.get_traced_memory()
    stack = _mem_stack()
    for entry in stack:
        if peak > entry[1]:
            entry[1] = peak
    tracemalloc.reset_peak()
    entry = [current, current]
    stack.append(entry)
    return entry


def _mem_exit(name: str, entry: list) -> None:
    if tracemalloc.is_tracing():
        _, peak = tracemalloc.get_traced_memory()
    else:  # disabled mid-flight
        peak = entry[1]
    stack = _mem_stack()
    if stack and stack[-1] is entry:
        stack.pop()
    elif entry in stack:  # pragma: no cover - unbalanced exit safety
        stack.remove(entry)
    final_peak = max(entry[1], peak)
    gauge_max(name + ".alloc_peak_bytes", max(0, final_peak - entry[0]))


class stage:
    """Instrument one pipeline stage: counters always, a span when tracing.

    ``with stage("kernel", format=..., mode=...) as sp:`` accumulates
    ``kernel.count`` / ``kernel.seconds`` in the counter registry on every
    execution (bench stage breakdowns read these deltas) and emits a
    ``kernel`` span when a tracer is installed.  ``sp`` is the span handle
    (the no-op singleton while disabled), so ``sp.set(...)`` is always
    safe.

    When histogram recording is enabled the duration additionally lands
    in the ``<name>.duration`` histogram; when memory tracking is enabled
    the stage's allocation peak lands in the ``<name>.alloc_peak_bytes``
    gauge.  Both opt-ins cost one attribute check while off.
    """

    __slots__ = ("_name", "_span", "_t0", "_mem")

    def __init__(self, name: str, **attrs):
        self._name = name
        self._span = span(name, **attrs)

    def __enter__(self):
        self._mem = _mem_enter() if MEM_STATE.enabled else None
        self._t0 = time.perf_counter()
        return self._span.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        result = self._span.__exit__(exc_type, exc, tb)
        seconds = time.perf_counter() - self._t0
        counter_add_stage(self._name, seconds)
        if HIST_STATE.enabled:
            histogram_observe(self._name + ".duration", seconds)
        if self._mem is not None:
            _mem_exit(self._name, self._mem)
        return result


def current_span_id() -> int | None:
    """Id of the innermost open span on this thread (None when disabled)."""
    if _TRACER is None:
        return None
    stack = getattr(_STACKS, "spans", None)
    return stack[-1].id if stack else None


def tracing_enabled() -> bool:
    """Whether a tracer is installed (spans are live, not no-ops)."""
    return _TRACER is not None


def get_tracer() -> Tracer | None:
    """The installed tracer, if any."""
    return _TRACER


def _install(tracer: Tracer | None) -> Tracer | None:
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = tracer
    return previous


def enable(path: str | os.PathLike | None = None,
           buffer: list | None = None) -> Tracer:
    """Install a process-wide tracer; returns it.

    ``path`` defaults to :data:`DEFAULT_TRACE_FILE` when no buffer is
    given.  A previously installed tracer is closed first.
    """
    if path is None and buffer is None:
        path = DEFAULT_TRACE_FILE
    tracer = Tracer(path, buffer)
    previous = _install(tracer)
    if previous is not None:
        previous.close()
    return tracer


def disable() -> None:
    """Remove and close the installed tracer (no-op when already off)."""
    previous = _install(None)
    if previous is not None:
        previous.close()


@contextmanager
def disabled():
    """Force tracing off for a block, restoring the prior tracer after.

    Unlike :func:`disable` the prior tracer is *not* closed — the CI leg
    that traces a whole test run keeps its file open across tests that
    exercise the disabled fast path.
    """
    previous = _install(None)
    try:
        yield
    finally:
        _install(previous)


@contextmanager
def trace_to(path: str | os.PathLike):
    """Trace the block into ``path``, restoring the prior tracer after."""
    tracer = Tracer(path)
    previous = _install(tracer)
    try:
        yield tracer
    finally:
        _install(previous)
        tracer.close()


@contextmanager
def capture():
    """Trace the block into an in-memory list of record dicts.

    Yields the list; span records (``{"type": "span", ...}``) appear in it
    as their spans close.  The prior tracer, if any, is restored (not
    closed) on exit — but it does not see the block's spans.
    """
    events: list[dict] = []
    tracer = Tracer(buffer=events)
    previous = _install(tracer)
    try:
        yield events
    finally:
        _install(previous)
        tracer.close()


# --------------------------------------------------------------------- #
# environment activation
# --------------------------------------------------------------------- #
def _close_global() -> None:  # pragma: no cover - exercised at interpreter exit
    disable()


def init_from_env(environ=None) -> Tracer | None:
    """Install a tracer according to ``REPRO_TRACE`` / ``REPRO_TRACE_FILE``.

    ``REPRO_TRACE`` set to a falsy spelling (``0``/``false``/``no``/``off``)
    wins over a configured trace file; an explicit ``REPRO_TRACE_FILE``
    alone is enough to enable.  Called once on package import.
    """
    env = os.environ if environ is None else environ
    flag = env.get(TRACE_ENV, "").strip().lower()
    path = env.get(TRACE_FILE_ENV, "").strip()
    if flag in _FALSY:
        return None
    if flag in _TRUTHY or path:
        tracer = enable(path or DEFAULT_TRACE_FILE)
        atexit.register(_close_global)
        return tracer
    return None


def init_mem_from_env(environ=None) -> bool:
    """Enable memory tracking when ``REPRO_TRACE_MEM`` is truthy.

    Called once on package import; returns whether tracking was enabled.
    """
    env = os.environ if environ is None else environ
    if env.get(TRACE_MEM_ENV, "").strip().lower() in _TRUTHY:
        enable_memory_tracking()
        return True
    return False
