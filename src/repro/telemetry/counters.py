"""Process-wide counter / gauge registry.

Counters are the always-on half of the observability layer: monotonically
accumulating numbers (call counts, cache hits, stage seconds) that every
instrumented layer feeds and that :mod:`repro.bench` records as per-cell
deltas next to wall-clock.  They are deliberately cheap — one lock and one
dict update per increment — so they stay enabled even when span tracing
(:mod:`repro.telemetry.tracer`) is off.

Gauges are point-in-time values (last worker count, peak RSS); setting one
overwrites the previous value instead of accumulating.

Consumers measure *deltas*, not absolutes: snapshot before an operation,
subtract after (:func:`counters_delta`).  That makes concurrent
instrumentation additive instead of destructive — nothing ever needs to
reset the registry to measure, so independent measurements (bench cells,
tests, the traced CI leg) cannot clobber each other.
"""

from __future__ import annotations

import threading

__all__ = [
    "counter_add",
    "counter_add_stage",
    "gauge_set",
    "counters_snapshot",
    "gauges_snapshot",
    "counters_delta",
    "reset_counters",
]


class CounterRegistry:
    """Thread-safe name → number accumulator with a gauge side-table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float | int] = {}
        self._gauges: dict[str, float | int] = {}

    def add(self, name: str, value: float | int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def add_stage(self, name: str, seconds: float) -> None:
        """One stage completion: ``<name>.count`` += 1, ``<name>.seconds``
        += ``seconds`` under a single lock acquisition (the dispatch hot
        path calls this once per kernel execution)."""
        count_key = name + ".count"
        seconds_key = name + ".seconds"
        with self._lock:
            counters = self._counters
            counters[count_key] = counters.get(count_key, 0) + 1
            counters[seconds_key] = counters.get(seconds_key, 0.0) + seconds

    def set_gauge(self, name: str, value: float | int) -> None:
        with self._lock:
            self._gauges[name] = value

    def snapshot(self) -> dict[str, float | int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float | int]:
        with self._lock:
            return dict(self._gauges)

    def delta(self, before: dict[str, float | int]) -> dict[str, float | int]:
        """Counter movement since ``before`` (a prior :meth:`snapshot`).

        Zero-movement names are dropped, so the result names exactly the
        counters the measured operation touched.
        """
        now = self.snapshot()
        moved: dict[str, float | int] = {}
        for name, value in now.items():
            change = value - before.get(name, 0)
            if change:
                moved[name] = change
        return moved

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


#: the process-global registry every instrumented layer feeds.
_REGISTRY = CounterRegistry()


def counter_add(name: str, value: float | int = 1) -> None:
    """Accumulate ``value`` into counter ``name``."""
    _REGISTRY.add(name, value)


def counter_add_stage(name: str, seconds: float) -> None:
    """Record one completed stage (``<name>.count`` / ``<name>.seconds``)."""
    _REGISTRY.add_stage(name, seconds)


def gauge_set(name: str, value: float | int) -> None:
    """Set gauge ``name`` to ``value`` (overwrites)."""
    _REGISTRY.set_gauge(name, value)


def counters_snapshot() -> dict[str, float | int]:
    """A point-in-time copy of every counter."""
    return _REGISTRY.snapshot()


def gauges_snapshot() -> dict[str, float | int]:
    """A point-in-time copy of every gauge."""
    return _REGISTRY.gauges()


def counters_delta(before: dict[str, float | int]) -> dict[str, float | int]:
    """Counters that moved since ``before`` (a prior snapshot)."""
    return _REGISTRY.delta(before)


def reset_counters() -> None:
    """Zero the whole registry (tests only — prefer delta measurement)."""
    _REGISTRY.reset()
