"""Process-wide counter / gauge registry.

Counters are the always-on half of the observability layer: monotonically
accumulating numbers (call counts, cache hits, stage seconds) that every
instrumented layer feeds and that :mod:`repro.bench` records as per-cell
deltas next to wall-clock.  They are deliberately cheap — one lock and one
dict update per increment — so they stay enabled even when span tracing
(:mod:`repro.telemetry.tracer`) is off.

Gauges are point-in-time values (last worker count, peak RSS); setting one
overwrites the previous value instead of accumulating.

Consumers measure *deltas*, not absolutes: snapshot before an operation,
subtract after (:func:`counters_delta`).  That makes concurrent
instrumentation additive instead of destructive — nothing ever needs to
reset the registry to measure, so independent measurements (bench cells,
tests, the traced CI leg) cannot clobber each other.

Histograms are the opt-in third metric kind: fixed log-spaced-bucket
distributions from which p50/p95/p99 are derivable without storing raw
samples.  They are off by default (``REPRO_HISTOGRAMS=1`` or
:func:`enable_histograms` turns them on) because a distribution per stage
is only worth its lock traffic when someone will read the percentiles —
the latency-distribution machinery the service layer consumes.
"""

from __future__ import annotations

import math
import os
import threading

from repro.util.errors import ValidationError

__all__ = [
    "counter_add",
    "counter_add_stage",
    "gauge_set",
    "gauge_max",
    "counters_snapshot",
    "gauges_snapshot",
    "counters_delta",
    "reset_counters",
    "Histogram",
    "HISTOGRAMS_ENV",
    "histogram_observe",
    "histograms_snapshot",
    "histograms_enabled",
    "enable_histograms",
    "disable_histograms",
]

# --------------------------------------------------------------------- #
# histograms
# --------------------------------------------------------------------- #

#: truthy values of this variable enable histogram recording process-wide.
HISTOGRAMS_ENV = "REPRO_HISTOGRAMS"

#: default bucket geometry: bucket 0 is [0, LO], bucket b>=1 covers
#: (LO*GROWTH^(b-1), LO*GROWTH^b].  LO=1us and 40 doubling buckets span
#: sub-microsecond noise up to ~6 days — every duration this library can
#: plausibly record lands in a real bucket, not the overflow.
HIST_LO = 1e-6
HIST_GROWTH = 2.0
HIST_BUCKETS = 40


class Histogram:
    """Fixed log-spaced-bucket distribution accumulator.

    Records values into ``buckets`` counting slots whose upper bounds grow
    geometrically from ``lo`` by ``growth``; quantiles are reconstructed
    by geometric interpolation inside the covering bucket and clamped to
    the observed min/max, so a histogram holding one repeated value
    reports that value exactly.  Two histograms with identical geometry
    :meth:`merge` by adding bucket counts — per-worker histograms combine
    into a process view without raw samples.

    ``record`` takes the instance lock once — *lock-per-record* — so
    concurrent recorders are safe and the disabled path (the caller never
    invoking ``record``) costs nothing.
    """

    __slots__ = ("lo", "growth", "counts", "count", "total",
                 "min", "max", "_lock", "_log_growth")

    def __init__(self, *, lo: float = HIST_LO, growth: float = HIST_GROWTH,
                 buckets: int = HIST_BUCKETS):
        if lo <= 0:
            raise ValidationError(f"histogram lo must be > 0, got {lo}")
        if growth <= 1.0:
            raise ValidationError(
                f"histogram growth must be > 1, got {growth}")
        if buckets < 2:
            raise ValidationError(
                f"histogram needs >= 2 buckets, got {buckets}")
        self.lo = float(lo)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.counts = [0] * int(buckets)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def bucket_index(self, value: float) -> int:
        """The bucket a value lands in (clamped to the last bucket)."""
        if value <= self.lo:
            return 0
        idx = 1 + int(math.floor(math.log(value / self.lo)
                                 / self._log_growth + 1e-12))
        return min(idx, len(self.counts) - 1)

    def bucket_upper(self, index: int) -> float:
        """Inclusive upper bound of bucket ``index``."""
        return self.lo * self.growth ** index

    def record(self, value: float) -> None:
        """Accumulate one observation (one lock acquisition)."""
        value = float(value)
        idx = self.bucket_index(value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        if (self.lo != other.lo or self.growth != other.growth
                or len(self.counts) != len(other.counts)):
            raise ValidationError(
                "cannot merge histograms with different bucket geometry: "
                f"lo {self.lo} vs {other.lo}, growth {self.growth} vs "
                f"{other.growth}, buckets {len(self.counts)} vs "
                f"{len(other.counts)}")
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.total
            omin, omax = other.min, other.max
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.count += count
            self.total += total
            self.min = min(self.min, omin)
            self.max = max(self.max, omax)

    # ------------------------------------------------------------------ #
    def percentile(self, q: float) -> float:
        """The q-quantile (``q`` in [0, 1]) reconstructed from buckets.

        Exact to within one bucket's geometric width; clamped to the
        observed ``[min, max]`` so degenerate distributions round-trip.
        Raises :class:`ValidationError` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"percentile q must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                raise ValidationError(
                    "cannot take a percentile of an empty histogram")
            counts = list(self.counts)
            count, vmin, vmax = self.count, self.min, self.max
        target = max(q * count, 1e-12)
        cum = 0
        for b, c in enumerate(counts):
            if c == 0:
                continue
            if cum + c >= target:
                frac = (target - cum) / c
                if b == 0:
                    est = self.lo * frac
                else:
                    est = (self.lo * self.growth ** (b - 1)
                           * self.growth ** frac)
                return min(max(est, vmin), vmax)
            cum += c
        return vmax  # pragma: no cover - float-rounding fallback

    def quantiles(self) -> dict[str, float]:
        """The conventional summary: p50 / p95 / p99 (plus count & mean)."""
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-safe serialisation (the trace-footer / bench format)."""
        with self._lock:
            return {
                "lo": self.lo,
                "growth": self.growth,
                "counts": list(self.counts),
                "count": self.count,
                "total": self.total,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        try:
            hist = cls(lo=float(data["lo"]), growth=float(data["growth"]),
                       buckets=len(data["counts"]))
            counts = [int(c) for c in data["counts"]]
            if any(c < 0 for c in counts):
                raise ValueError("negative bucket count")
            hist.counts = counts
            hist.count = int(data["count"])
            hist.total = float(data["total"])
            hist.min = (float(data["min"]) if data.get("min") is not None
                        else math.inf)
            hist.max = (float(data["max"]) if data.get("max") is not None
                        else -math.inf)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed histogram dict: {exc}") from None
        return hist


class _HistogramState:
    """Mutable process-wide on/off flag, readable with one attribute load.

    The ``stage()`` hot path checks ``HIST_STATE.enabled`` before touching
    any histogram machinery — when off, histogram support costs exactly
    that attribute read.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


HIST_STATE = _HistogramState()


def histograms_enabled() -> bool:
    """Whether histogram recording is currently on."""
    return HIST_STATE.enabled


def enable_histograms() -> None:
    """Turn on histogram recording process-wide."""
    HIST_STATE.enabled = True


def disable_histograms() -> None:
    """Turn off histogram recording (recorded data is kept)."""
    HIST_STATE.enabled = False


class CounterRegistry:
    """Thread-safe name → number accumulator with a gauge side-table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float | int] = {}
        self._gauges: dict[str, float | int] = {}
        self._histograms: dict[str, Histogram] = {}

    def add(self, name: str, value: float | int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def add_stage(self, name: str, seconds: float) -> None:
        """One stage completion: ``<name>.count`` += 1, ``<name>.seconds``
        += ``seconds`` under a single lock acquisition (the dispatch hot
        path calls this once per kernel execution)."""
        count_key = name + ".count"
        seconds_key = name + ".seconds"
        with self._lock:
            counters = self._counters
            counters[count_key] = counters.get(count_key, 0) + 1
            counters[seconds_key] = counters.get(seconds_key, 0.0) + seconds

    def set_gauge(self, name: str, value: float | int) -> None:
        with self._lock:
            self._gauges[name] = value

    def max_gauge(self, name: str, value: float | int) -> None:
        """Raise gauge ``name`` to ``value`` if it is higher (high-water
        marks like per-stage allocation peaks)."""
        with self._lock:
            if value > self._gauges.get(name, value - 1):
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (created on first use).

        The registry lock only guards the name lookup; the record itself
        takes the histogram's own lock, so concurrent recorders of
        different names do not serialise on one global lock.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
        hist.record(value)

    def histograms(self) -> dict[str, Histogram]:
        """Point-in-time copy of the name → histogram mapping (live
        objects — serialise via :meth:`Histogram.to_dict`)."""
        with self._lock:
            return dict(self._histograms)

    def histograms_snapshot(self) -> dict[str, dict]:
        """JSON-safe snapshot of every histogram."""
        with self._lock:
            hists = dict(self._histograms)
        return {name: h.to_dict() for name, h in hists.items()}

    def snapshot(self) -> dict[str, float | int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float | int]:
        with self._lock:
            return dict(self._gauges)

    def delta(self, before: dict[str, float | int]) -> dict[str, float | int]:
        """Counter movement since ``before`` (a prior :meth:`snapshot`).

        Zero-movement names are dropped, so the result names exactly the
        counters the measured operation touched.
        """
        now = self.snapshot()
        moved: dict[str, float | int] = {}
        for name, value in now.items():
            change = value - before.get(name, 0)
            if change:
                moved[name] = change
        return moved

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: the process-global registry every instrumented layer feeds.
_REGISTRY = CounterRegistry()


def counter_add(name: str, value: float | int = 1) -> None:
    """Accumulate ``value`` into counter ``name``."""
    _REGISTRY.add(name, value)


def counter_add_stage(name: str, seconds: float) -> None:
    """Record one completed stage (``<name>.count`` / ``<name>.seconds``)."""
    _REGISTRY.add_stage(name, seconds)


def gauge_set(name: str, value: float | int) -> None:
    """Set gauge ``name`` to ``value`` (overwrites)."""
    _REGISTRY.set_gauge(name, value)


def gauge_max(name: str, value: float | int) -> None:
    """Raise gauge ``name`` to ``value`` if higher (high-water mark)."""
    _REGISTRY.max_gauge(name, value)


def histogram_observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name``.

    Callers on hot paths must gate on :func:`histograms_enabled` (the
    recording itself is unconditional so tests and explicit consumers can
    observe without flipping the global flag).
    """
    _REGISTRY.observe(name, value)


def histograms_snapshot() -> dict[str, dict]:
    """A JSON-safe point-in-time copy of every histogram."""
    return _REGISTRY.histograms_snapshot()


def counters_snapshot() -> dict[str, float | int]:
    """A point-in-time copy of every counter."""
    return _REGISTRY.snapshot()


def gauges_snapshot() -> dict[str, float | int]:
    """A point-in-time copy of every gauge."""
    return _REGISTRY.gauges()


def counters_delta(before: dict[str, float | int]) -> dict[str, float | int]:
    """Counters that moved since ``before`` (a prior snapshot)."""
    return _REGISTRY.delta(before)


def reset_counters() -> None:
    """Zero the whole registry, histograms included (tests only — prefer
    delta measurement)."""
    _REGISTRY.reset()


def init_histograms_from_env(environ=None) -> bool:
    """Enable histogram recording when ``REPRO_HISTOGRAMS`` is truthy.

    Called once on package import; returns whether recording was enabled.
    """
    env = os.environ if environ is None else environ
    if env.get(HISTOGRAMS_ENV, "").strip().lower() in ("1", "true", "yes",
                                                       "on"):
        enable_histograms()
        return True
    return False


init_histograms_from_env()
