"""Trace analysis: span summaries and per-worker timelines.

The timeline view is the one the paper's load-balancing story needs: each
``parallel.execute`` span (one threaded MTTKRP dispatch) carries the LPT
plan's prediction — per-worker nnz loads and makespan — while its child
``parallel.shard`` spans carry what actually happened (which worker ran
which shard, for how long).  :func:`worker_timelines` joins the two so the
measured per-worker busy time and the assigned shard costs can be compared
worker by worker against the plan.
"""

from __future__ import annotations

from repro.telemetry.counters import Histogram
from repro.telemetry.export import SpanRecord, Trace
from repro.util.errors import ValidationError
from repro.util.timing import quantile

__all__ = ["span_summary", "worker_timelines", "render_summary",
           "render_timeline", "render_cache_stats", "SUMMARY_SORTS"]

#: accepted ``sort=`` keys for :func:`span_summary` (CLI ``--sort``).
SUMMARY_SORTS = ("total", "count", "name")


def span_summary(trace: Trace, sort: str = "total") -> list[dict]:
    """Aggregate spans by name: count and total/mean/p95/max duration.

    ``sort`` orders the rows: ``"total"`` (default — hottest stage first)
    and ``"count"`` descend, ``"name"`` is alphabetical.  When the trace
    carries duration histograms (recorded under ``REPRO_HISTOGRAMS=1``),
    each row whose ``<name>.duration`` histogram is present additionally
    reports its ``p50`` / ``hist_p95`` / ``p99``.
    """
    if sort not in SUMMARY_SORTS:
        raise ValidationError(
            f"unknown sort {sort!r}; choose one of {', '.join(SUMMARY_SORTS)}")
    groups: dict[str, list[float]] = {}
    for sp in trace.spans:
        groups.setdefault(sp.name, []).append(sp.dur)
    rows = []
    for name, durs in groups.items():
        row = {
            "name": name,
            "count": len(durs),
            "total": sum(durs),
            "mean": sum(durs) / len(durs),
            "p95": quantile(durs, 0.95),
            "max": max(durs),
        }
        hist_dict = trace.histograms.get(f"{name}.duration")
        if hist_dict:
            hist = Histogram.from_dict(hist_dict)
            if hist.count:
                row["p50"] = hist.percentile(0.50)
                row["hist_p95"] = hist.percentile(0.95)
                row["p99"] = hist.percentile(0.99)
        rows.append(row)
    if sort == "name":
        rows.sort(key=lambda r: r["name"])
    else:
        rows.sort(key=lambda r: r[sort], reverse=True)
    return rows


def worker_timelines(trace: Trace) -> list[dict]:
    """One timeline per ``parallel.execute`` span in the trace.

    Each timeline maps every worker to its shard spans (relative to the
    dispatch start), measured busy seconds, and the sum of the LPT shard
    costs it actually ran, alongside the plan's predicted per-worker
    ``loads``.  Shard costs are integer-valued nnz counts, so the per-worker
    cost sums reconstructed from the shard spans match ``loads`` exactly
    when the trace reflects the planned assignment.
    """
    timelines = []
    for ex in trace.by_name("parallel.execute"):
        shards = [s for s in trace.children_of(ex.id)
                  if s.name == "parallel.shard"]
        num_workers = int(ex.attrs.get("num_workers") or 0)
        seen = [int(s.attrs.get("worker", 0)) for s in shards]
        workers_n = max(num_workers, max(seen) + 1 if seen else 0)
        workers = []
        for w in range(workers_n):
            mine = sorted((s for s in shards
                           if int(s.attrs.get("worker", 0)) == w),
                          key=lambda s: s.t0)
            workers.append({
                "worker": w,
                "shards": [{
                    "start": s.t0 - ex.t0,
                    "end": s.t1 - ex.t0,
                    "dur": s.dur,
                    "cost": float(s.attrs.get("cost", 0.0)),
                    "kind": s.attrs.get("kind"),
                    "thread": s.thread,
                } for s in mine],
                "busy_seconds": sum(s.dur for s in mine),
                "cost": sum(float(s.attrs.get("cost", 0.0)) for s in mine),
            })
        predicted_loads = [float(v) for v in (ex.attrs.get("loads") or [])]
        timelines.append({
            "format": ex.attrs.get("format"),
            "mode": ex.attrs.get("mode"),
            "num_workers": workers_n,
            "duration": ex.dur,
            "workers": workers,
            "predicted_loads": predicted_loads,
            "predicted_makespan": ex.attrs.get("makespan"),
            "measured_makespan": max((w["busy_seconds"] for w in workers),
                                     default=0.0),
            "total_nnz": ex.attrs.get("total_nnz"),
        })
    return timelines


# --------------------------------------------------------------------- #
# text rendering (the repro-telemetry CLI and the speedup example)
# --------------------------------------------------------------------- #
def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}us"


def render_summary(trace: Trace, sort: str = "total") -> str:
    rows = span_summary(trace, sort=sort)
    if not rows and not trace.counters:
        return "no spans in trace"
    with_hist = any("p50" in r for r in rows)
    header = (f"{'span':<24} {'count':>7} {'total':>10} {'mean':>10} "
              f"{'p95':>10} {'max':>10}")
    if with_hist:
        header += f" {'p50':>10} {'h-p95':>10} {'p99':>10}"
    lines = [header] if rows else ["no spans in trace"]
    for r in rows:
        line = (
            f"{r['name']:<24} {r['count']:>7d} {_fmt_s(r['total'])} "
            f"{_fmt_s(r['mean'])} {_fmt_s(r['p95'])} {_fmt_s(r['max'])}"
        )
        if with_hist:
            if "p50" in r:
                line += (f" {_fmt_s(r['p50'])} {_fmt_s(r['hist_p95'])} "
                         f"{_fmt_s(r['p99'])}")
            else:
                line += f" {'-':>10} {'-':>10} {'-':>10}"
        lines.append(line)
    if with_hist:
        lines.append("")
        lines.append("p50/h-p95/p99 come from the recorded duration "
                     "histograms (REPRO_HISTOGRAMS=1), the span-sample "
                     "p95 from the spans themselves.")
    if trace.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(trace.counters):
            lines.append(f"  {name:<32} {trace.counters[name]}")
        injected = trace.counters.get("faults.injected", 0)
        recovered = trace.counters.get("faults.recovered", 0)
        quarantined = trace.counters.get("cache.quarantined", 0)
        if injected or recovered or quarantined:
            lines.append("")
            line = (f"faults: {injected} injected, {recovered} recovered, "
                    f"{quarantined} file(s) quarantined")
            if rows:
                line += " (recovery.* spans above show the rebuild cost)"
            lines.append(line)
    return "\n".join(lines)


def render_timeline(timeline: dict, width: int = 48) -> str:
    """ASCII per-worker timeline for one ``parallel.execute`` dispatch."""
    total = max(timeline["duration"], 1e-12)
    loads = timeline["predicted_loads"]
    lines = [
        f"parallel.execute format={timeline['format']} "
        f"mode={timeline['mode']} workers={timeline['num_workers']} "
        f"wall={_fmt_s(timeline['duration']).strip()}"
    ]
    for w in timeline["workers"]:
        bar = [" "] * width
        for sh in w["shards"]:
            lo = min(width - 1, int(sh["start"] / total * width))
            hi = min(width, max(lo + 1, int(sh["end"] / total * width)))
            for i in range(lo, hi):
                bar[i] = "#"
        predicted = (f" plan={loads[w['worker']]:,.0f}nnz"
                     if w["worker"] < len(loads) else "")
        lines.append(
            f"  w{w['worker']:<2d} |{''.join(bar)}| "
            f"busy={_fmt_s(w['busy_seconds']).strip()} "
            f"shards={len(w['shards'])} cost={w['cost']:,.0f}nnz{predicted}"
        )
    measured = timeline["measured_makespan"]
    predicted = timeline.get("predicted_makespan")
    line = f"  makespan: measured={_fmt_s(measured).strip()}"
    if predicted:
        line += f"  plan={float(predicted):,.0f}nnz"
    lines.append(line)
    return "\n".join(lines)


def render_cache_stats(plan: dict, decision: dict,
                       source: str = "live") -> str:
    lines = [f"cache statistics ({source})", "", "plan cache:"]
    for key in sorted(plan):
        lines.append(f"  {key:<24} {plan[key]}")
    lines.append("")
    lines.append("decision cache:")
    for key in sorted(decision):
        value = decision[key]
        if isinstance(value, dict):
            lines.append(f"  {key}:")
            for sub in sorted(value):
                lines.append(f"    {sub:<22} {value[sub]}")
        else:
            lines.append(f"  {key:<24} {value}")
    return "\n".join(lines)
