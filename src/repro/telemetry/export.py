"""JSONL trace schema and parsing.

A trace file is a sequence of JSON objects, one per line, each tagged with
a ``type``:

``meta``
    Header written when the tracer opens the file: ``schema`` (the
    :data:`TRACE_SCHEMA_VERSION` integer), ``pid``, ``clock``
    (``"perf_counter"`` — monotonic, process-wide, shared by all threads),
    and ``created_at`` (wall-clock epoch seconds, for humans only).

``span``
    One finished span: ``id`` (positive int, unique per process), ``parent``
    (id of the enclosing span or ``None`` for roots), ``name``, ``t0`` /
    ``t1`` / ``dur`` (perf_counter seconds), ``thread`` (thread name), and
    ``attrs`` (the structured attributes, JSON-safe).

``counters`` / ``caches``
    Footers written when the tracer closes: a snapshot of the counter and
    gauge registries (plus serialised histograms when histogram recording
    was on), and the plan-/decision-cache statistics.

Spans stream to the file as they close, so the parent of a span can appear
*after* it (the parent closes later) and a crashed process leaves a valid,
footerless trace.  :func:`read_trace` tolerates both.

:func:`to_chrome_trace` converts a parsed trace to the Chrome trace-event
JSON format (one ``X`` complete event per span, one lane per thread) so
traces open directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.errors import ValidationError

__all__ = ["TRACE_SCHEMA_VERSION", "SpanRecord", "Trace",
           "parse_events", "read_trace", "to_chrome_trace",
           "write_chrome_trace"]

#: bump when the line format above changes incompatibly.
TRACE_SCHEMA_VERSION = 1

_SPAN_FIELDS = ("id", "name", "t0", "t1")


@dataclass(frozen=True)
class SpanRecord:
    """One parsed ``span`` line."""

    id: int
    parent: int | None
    name: str
    t0: float
    t1: float
    dur: float
    thread: str
    attrs: dict

    @classmethod
    def from_dict(cls, record: dict) -> "SpanRecord":
        for key in _SPAN_FIELDS:
            if key not in record:
                raise ValidationError(
                    f"span record is missing required field {key!r}: {record}"
                )
        t0 = float(record["t0"])
        t1 = float(record["t1"])
        if t1 < t0:
            raise ValidationError(
                f"span {record['id']} ends before it starts (t0={t0}, t1={t1})"
            )
        return cls(
            id=int(record["id"]),
            parent=record.get("parent"),
            name=str(record["name"]),
            t0=t0,
            t1=t1,
            dur=float(record.get("dur", t1 - t0)),
            thread=str(record.get("thread", "?")),
            attrs=dict(record.get("attrs") or {}),
        )


@dataclass
class Trace:
    """A fully parsed trace: header, spans, and (optional) footers."""

    meta: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    caches: dict = field(default_factory=dict)

    @property
    def schema(self) -> int:
        return int(self.meta.get("schema", TRACE_SCHEMA_VERSION))

    def by_name(self, name: str) -> list[SpanRecord]:
        """Spans with the given name, in file (completion) order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span_id: int) -> list[SpanRecord]:
        """Direct children of a span, ordered by start time."""
        kids = [s for s in self.spans if s.parent == span_id]
        kids.sort(key=lambda s: s.t0)
        return kids

    def roots(self) -> list[SpanRecord]:
        """Spans with no parent in the trace, ordered by start time."""
        ids = {s.id for s in self.spans}
        top = [s for s in self.spans if s.parent is None or s.parent not in ids]
        top.sort(key=lambda s: s.t0)
        return top


def parse_events(records) -> Trace:
    """Assemble a :class:`Trace` from an iterable of record dicts.

    Accepts the in-memory event lists produced by
    :func:`repro.telemetry.capture` as well as decoded file lines.  Raises
    :class:`ValidationError` on a schema newer than this reader, malformed
    span records, or unknown line types.
    """
    trace = Trace()
    for record in records:
        if not isinstance(record, dict):
            raise ValidationError(f"trace record is not an object: {record!r}")
        kind = record.get("type")
        if kind == "meta":
            trace.meta = record
            schema = int(record.get("schema", 0))
            if schema > TRACE_SCHEMA_VERSION:
                raise ValidationError(
                    f"trace schema {schema} is newer than supported "
                    f"version {TRACE_SCHEMA_VERSION}"
                )
        elif kind == "span":
            trace.spans.append(SpanRecord.from_dict(record))
        elif kind == "counters":
            trace.counters = dict(record.get("values") or {})
            trace.gauges = dict(record.get("gauges") or {})
            trace.histograms = dict(record.get("histograms") or {})
        elif kind == "caches":
            trace.caches = {k: v for k, v in record.items() if k != "type"}
        else:
            raise ValidationError(f"unknown trace record type: {kind!r}")
    return trace


def to_chrome_trace(trace: Trace) -> dict:
    """Convert a parsed trace to Chrome trace-event format.

    Every span becomes one complete (``"ph": "X"``) event on the lane of
    the thread that ran it: Perfetto and ``chrome://tracing`` then render
    the worker timelines natively.  Timestamps are microseconds relative
    to the earliest span in the trace (Chrome wants small numbers, and
    ``perf_counter`` origins are arbitrary anyway).  Thread lanes are
    numbered with ``MainThread`` first, then by first appearance, and
    named via ``thread_name`` metadata events.  The counter / gauge /
    cache footers ride along under ``otherData`` so nothing recorded is
    lost in conversion.
    """
    pid = int(trace.meta.get("pid") or 0)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro"},
    }]
    ordered = sorted(trace.spans, key=lambda s: s.t0)
    names: list[str] = []
    for sp in ordered:
        if sp.thread not in names:
            names.append(sp.thread)
    if "MainThread" in names:
        names.remove("MainThread")
        names.insert(0, "MainThread")
    threads = {name: tid for tid, name in enumerate(names)}
    for name, tid in threads.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })
    t_origin = min((s.t0 for s in trace.spans), default=0.0)
    for sp in ordered:
        args = dict(sp.attrs)
        args["span_id"] = sp.id
        if sp.parent is not None:
            args["parent_span_id"] = sp.parent
        events.append({
            "name": sp.name,
            "cat": sp.name.split(".", 1)[0],
            "ph": "X",
            "pid": pid,
            "tid": threads.get(sp.thread, len(threads)),
            "ts": (sp.t0 - t_origin) * 1e6,
            "dur": sp.dur * 1e6,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": trace.schema,
            "clock": trace.meta.get("clock"),
            "counters": trace.counters,
            "gauges": trace.gauges,
            "histograms": trace.histograms,
            "caches": trace.caches,
        },
    }


def write_chrome_trace(trace: Trace, path) -> Path:
    """Serialise :func:`to_chrome_trace` output to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace), fh, indent=1)
        fh.write("\n")
    return path


def read_trace(path) -> Trace:
    """Parse a JSONL trace file written by the tracer."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"trace file not found: {path}")
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: invalid JSON in trace: {exc}"
                ) from exc
    return parse_events(records)
