"""Observability layer: span tracing + process-wide counters.

Two halves:

* **Counters** (:mod:`repro.telemetry.counters`) are always on — cheap
  accumulators every instrumented layer feeds (``kernel.count``,
  ``plan_cache.hits``, ``gpusim.flops``, ...).  Consumers snapshot before
  and diff after (:func:`counters_delta`); ``repro-bench`` records those
  deltas per measurement cell.

* **Spans** (:mod:`repro.telemetry.tracer`) are off by default and
  near-free while off.  ``REPRO_TRACE=1`` (or ``REPRO_TRACE_FILE=path``,
  or :func:`enable` / :func:`trace_to` / :func:`capture`) streams nested,
  attributed, monotonic-clock spans to a JSONL file that
  ``repro-telemetry`` renders as stage summaries, per-worker timelines,
  and cache statistics.

See ``src/repro/telemetry/README.md`` for the span/counter model and the
trace schema.
"""

from repro.telemetry.counters import (
    HISTOGRAMS_ENV,
    CounterRegistry,
    Histogram,
    counter_add,
    counter_add_stage,
    counters_delta,
    counters_snapshot,
    disable_histograms,
    enable_histograms,
    gauge_max,
    gauge_set,
    gauges_snapshot,
    histogram_observe,
    histograms_enabled,
    histograms_snapshot,
    reset_counters,
)
from repro.telemetry.export import (
    TRACE_SCHEMA_VERSION,
    SpanRecord,
    Trace,
    parse_events,
    read_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.summary import (
    render_summary,
    render_timeline,
    span_summary,
    worker_timelines,
)
from repro.telemetry.tracer import (
    DEFAULT_TRACE_FILE,
    TRACE_ENV,
    TRACE_FILE_ENV,
    TRACE_MEM_ENV,
    Tracer,
    capture,
    current_span_id,
    disable,
    disable_memory_tracking,
    disabled,
    enable,
    enable_memory_tracking,
    get_tracer,
    init_from_env,
    init_mem_from_env,
    memory_tracking_enabled,
    span,
    stage,
    trace_to,
    tracing_enabled,
)

__all__ = [
    # counters
    "CounterRegistry",
    "counter_add",
    "counter_add_stage",
    "counters_delta",
    "counters_snapshot",
    "gauge_max",
    "gauge_set",
    "gauges_snapshot",
    "reset_counters",
    # histograms
    "HISTOGRAMS_ENV",
    "Histogram",
    "disable_histograms",
    "enable_histograms",
    "histogram_observe",
    "histograms_enabled",
    "histograms_snapshot",
    # tracer
    "DEFAULT_TRACE_FILE",
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "TRACE_MEM_ENV",
    "Tracer",
    "capture",
    "current_span_id",
    "disable",
    "disable_memory_tracking",
    "disabled",
    "enable",
    "enable_memory_tracking",
    "get_tracer",
    "init_from_env",
    "init_mem_from_env",
    "memory_tracking_enabled",
    "span",
    "stage",
    "trace_to",
    "tracing_enabled",
    # export / analysis
    "TRACE_SCHEMA_VERSION",
    "SpanRecord",
    "Trace",
    "parse_events",
    "read_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_summary",
    "render_timeline",
    "span_summary",
    "worker_timelines",
]

# Environment activation: REPRO_TRACE=1 / REPRO_TRACE_FILE=path installs a
# process-wide tracer the moment any instrumented layer imports telemetry;
# REPRO_TRACE_MEM=1 additionally starts tracemalloc for per-stage
# allocation peaks (REPRO_HISTOGRAMS is handled in counters' own import).
init_from_env()
init_mem_from_env()
