"""``repro-telemetry`` — render JSONL trace files.

Three views over a trace written with ``REPRO_TRACE=1`` (or
``REPRO_TRACE_FILE=...``):

* ``summary``      aggregate span durations by name, plus counters
  (``--sort total|count|name``; p50/p95/p99 columns when the trace
  carries duration histograms)
* ``timeline``     per-worker shard timelines for threaded dispatches
* ``cache-stats``  plan-/decision-cache statistics (from the trace footer,
  or live from the current process when no trace is given)
* ``export``       convert a trace to another format (``--chrome out.json``
  writes Chrome trace-event JSON for Perfetto / chrome://tracing)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.export import read_trace, write_chrome_trace
from repro.telemetry.summary import (
    SUMMARY_SORTS,
    render_cache_stats,
    render_summary,
    render_timeline,
    span_summary,
    worker_timelines,
)
from repro.telemetry.tracer import DEFAULT_TRACE_FILE
from repro.util.errors import ValidationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Render repro JSONL trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="aggregate span durations by name")
    p_summary.add_argument(
        "trace", nargs="?", default=DEFAULT_TRACE_FILE,
        help=f"trace file (default: {DEFAULT_TRACE_FILE})")
    p_summary.add_argument(
        "--json", action="store_true", help="emit JSON instead of text")
    p_summary.add_argument(
        "--sort", choices=SUMMARY_SORTS, default="total",
        help="row order: total (hottest first, default), count, or name")

    p_timeline = sub.add_parser(
        "timeline", help="per-worker shard timelines for threaded dispatches")
    p_timeline.add_argument(
        "trace", nargs="?", default=DEFAULT_TRACE_FILE,
        help=f"trace file (default: {DEFAULT_TRACE_FILE})")
    p_timeline.add_argument(
        "--json", action="store_true", help="emit JSON instead of text")
    p_timeline.add_argument(
        "--last", action="store_true",
        help="only the most recent dispatch (e.g. skip warmup runs)")

    p_caches = sub.add_parser(
        "cache-stats", help="plan-/decision-cache statistics")
    p_caches.add_argument(
        "trace", nargs="?", default=None,
        help="trace file with a caches footer; omitted = live process stats")
    p_caches.add_argument(
        "--json", action="store_true", help="emit JSON instead of text")

    p_export = sub.add_parser(
        "export", help="convert a trace to another format")
    p_export.add_argument(
        "trace", nargs="?", default=DEFAULT_TRACE_FILE,
        help=f"trace file (default: {DEFAULT_TRACE_FILE})")
    p_export.add_argument(
        "--chrome", metavar="OUT.json", required=True,
        help="write Chrome trace-event JSON here "
             "(open in Perfetto / chrome://tracing)")
    return parser


def _cmd_summary(args) -> int:
    trace = read_trace(args.trace)
    if args.json:
        print(json.dumps({"spans": span_summary(trace, sort=args.sort),
                          "counters": trace.counters,
                          "gauges": trace.gauges,
                          "histograms": trace.histograms}, indent=2))
    else:
        print(render_summary(trace, sort=args.sort))
    return 0


def _cmd_timeline(args) -> int:
    trace = read_trace(args.trace)
    timelines = worker_timelines(trace)
    if args.last and timelines:
        timelines = timelines[-1:]
    if args.json:
        print(json.dumps(timelines, indent=2))
        return 0
    if not timelines:
        print("no parallel.execute spans in trace "
              "(run a threaded dispatch with tracing enabled)")
        return 1
    print("\n\n".join(render_timeline(t) for t in timelines))
    return 0


def _live_cache_stats() -> tuple[dict, dict]:
    from repro.formats import plan_cache_stats
    from repro.tune import decision_cache_stats

    return plan_cache_stats(), decision_cache_stats()


def _cmd_cache_stats(args) -> int:
    if args.trace is None:
        plan, decision = _live_cache_stats()
        source = "live process"
    else:
        trace = read_trace(args.trace)
        caches = trace.caches
        if not caches:
            raise ValidationError(
                f"{args.trace} has no caches footer (trace truncated?)")
        plan = caches.get("plan_cache", {})
        decision = caches.get("decision_cache", {})
        source = str(args.trace)
    if args.json:
        print(json.dumps({"plan_cache": plan, "decision_cache": decision,
                          "source": source}, indent=2))
    else:
        print(render_cache_stats(plan, decision, source=source))
    return 0


def _cmd_export(args) -> int:
    trace = read_trace(args.trace)
    out = write_chrome_trace(trace, args.chrome)
    print(f"wrote {out}  ({len(trace.spans)} spans as Chrome trace events)")
    return 0


_COMMANDS = {
    "summary": _cmd_summary,
    "timeline": _cmd_timeline,
    "cache-stats": _cmd_cache_stats,
    "export": _cmd_export,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream pager/head closed the pipe mid-render; not an error.
        # Detach stdout so interpreter shutdown does not re-raise on flush.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
