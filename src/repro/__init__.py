"""repro — reproduction of "Load-Balanced Sparse MTTKRP on GPUs" (IPDPS'19).

The package implements the paper's contributions (the B-CSF and HB-CSF
sparse-tensor formats and their load-balanced MTTKRP) together with every
substrate the evaluation depends on: COO/CSF tensors, synthetic stand-ins
for the FROSTT / HaTen2 datasets, a GPU execution-model simulator standing
in for the Tesla P100, CPU and GPU baselines (SPLATT, HiCOO, ParTI, F-COO),
CPD-ALS, and one experiment driver per table / figure.

Quick start
-----------
>>> import repro
>>> tensor = repro.load_dataset("nell2", scale=0.2)
>>> factors = repro.init_factors(tensor, rank=16, rng=0)
>>> y = repro.mttkrp(tensor, factors, mode=0, format="hb-csf")
>>> result = repro.simulate_mttkrp(tensor, mode=0, rank=16, format="hb-csf")
>>> result.gflops > 0
True

See ``examples/`` for end-to-end scripts and ``repro.experiments`` for the
table/figure drivers.
"""

from repro.tensor import (
    CooTensor,
    CsfTensor,
    build_csf,
    load_dataset,
    dataset_names,
    random_coo,
    power_law_tensor,
    PowerLawSpec,
    read_tns,
    write_tns,
    mode_stats,
    Reordering,
    random_relabel,
    relabel_mode_by_density,
    zorder_sort,
)
from repro.core import (
    SplitConfig,
    BcsfTensor,
    build_bcsf,
    CslGroup,
    build_csl_group,
    HbcsfTensor,
    build_hbcsf,
    partition_slices,
    mttkrp,
    MttkrpPlan,
    FORMATS,
)
from repro.formats import (
    FormatSpec,
    register_format,
    canonical_format,
    get_format,
    format_names,
    build_plan,
    plan_cache_stats,
    clear_plan_cache,
)
from repro.gpusim import (
    DeviceSpec,
    TESLA_P100,
    TESLA_V100,
    LaunchConfig,
    simulate_mttkrp,
    KernelResult,
)
from repro.baselines import (
    SplattMttkrp,
    HicooMttkrp,
    PartiGpuMttkrp,
    FcooGpuMttkrp,
)
from repro.cpd import cp_als, CpdResult, init_factors
from repro.tune import (
    decide,
    TuneDecision,
    decision_cache_stats,
    clear_decision_cache,
)
from repro.analysis import storage_comparison, load_balance_report
from repro.experiments import run_experiment, EXPERIMENTS

__version__ = "1.0.0"

__all__ = [
    # tensors
    "CooTensor", "CsfTensor", "build_csf", "load_dataset", "dataset_names",
    "random_coo", "power_law_tensor", "PowerLawSpec", "read_tns", "write_tns",
    "mode_stats", "Reordering", "random_relabel", "relabel_mode_by_density",
    "zorder_sort",
    # core formats / MTTKRP
    "SplitConfig", "BcsfTensor", "build_bcsf", "CslGroup", "build_csl_group",
    "HbcsfTensor", "build_hbcsf", "partition_slices", "mttkrp", "MttkrpPlan",
    "FORMATS",
    # format registry / build-plan cache
    "FormatSpec", "register_format", "canonical_format", "get_format",
    "format_names", "build_plan", "plan_cache_stats", "clear_plan_cache",
    # GPU simulation
    "DeviceSpec", "TESLA_P100", "TESLA_V100", "LaunchConfig",
    "simulate_mttkrp", "KernelResult",
    # baselines
    "SplattMttkrp", "HicooMttkrp", "PartiGpuMttkrp", "FcooGpuMttkrp",
    # CPD
    "cp_als", "CpdResult", "init_factors",
    # autotuner (format="auto")
    "decide", "TuneDecision", "decision_cache_stats", "clear_decision_cache",
    # analysis / experiments
    "storage_comparison", "load_balance_report", "run_experiment",
    "EXPERIMENTS",
    "__version__",
]
