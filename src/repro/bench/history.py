"""Trend analytics over the append-only ``BENCH_history.jsonl`` trajectory.

:mod:`repro.bench.compare` answers "did *this* run regress against *that*
run"; this module answers the longitudinal question: across every run ever
appended to the history file, is a (target, scenario) cell drifting,
stepped, or stable?

The pipeline:

1. :func:`load_history` reads and validates the JSONL trajectory (schema
   versions 1 and 2 both load — v1 lines simply carry no counters).
2. :func:`build_series` groups measurement cells into time series keyed by
   ``(target, scenario, spec_hash)`` *split by comparability*: points
   measured under a materially different environment
   (:func:`repro.bench.env.env_fingerprint`: machine, CPU count, Python
   major.minor) or measurement configuration (rank, dtype, backend,
   workers) land in separate series, because a cross-machine step is a
   hardware change, not a regression.
3. :func:`detect_trend` classifies each series with a robust
   median-shift-vs-MAD changepoint detector (pure Python, no SciPy): the
   split point whose prefix/suffix median shift is largest relative to
   the pooled median-absolute-deviation noise band wins, and is flagged
   only when both statistically significant (``min_sigma``) and
   practically large (``min_shift``).  Short series (2-4 points) fall
   back to a last-vs-prior-median pairwise check.

:mod:`repro.bench.attribution` consumes the flagged series to rank which
telemetry counters moved with the slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.env import env_fingerprint
from repro.bench.schema import HISTORY_FILE, BenchRun
from repro.util.errors import ValidationError
from repro.util.timing import median_abs_deviation, quantile

__all__ = [
    "SeriesKey",
    "SeriesPoint",
    "Series",
    "TrendResult",
    "SeriesReport",
    "load_history",
    "build_series",
    "detect_trend",
    "analyze_history",
    "sparkline",
    "DEFAULT_MIN_SHIFT",
    "DEFAULT_MIN_SIGMA",
]

#: smallest relative median shift reported as a trend (10% — matches the
#: pairwise compare threshold, so the two tools agree on "material").
DEFAULT_MIN_SHIFT = 0.10

#: how many MAD-based noise sigmas a shift must clear to be a changepoint
#: rather than noise.
DEFAULT_MIN_SIGMA = 3.0

#: noise floor as a fraction of the series median: even a series whose
#: recorded laps happen to be identical is not measured more precisely
#: than a couple of percent, so the sigma band never collapses to zero.
_REL_NOISE_FLOOR = 0.02

#: MAD of a Gaussian is sigma/1.4826; scaling back makes min_sigma read in
#: familiar standard-deviation units.
_MAD_SIGMA_SCALE = 1.4826


@dataclass(frozen=True)
class SeriesKey:
    """What must match for two history cells to belong to one time series."""

    target: str
    scenario: str
    spec_hash: str
    #: :func:`repro.bench.env.env_fingerprint` of the run's environment.
    env: tuple
    #: (rank, dtype, backend, num_workers) of the measurement.
    config: tuple

    def label(self) -> str:
        """Short human-readable series identity for reports."""
        machine, cpu_count, python = self.env
        env = f"{machine or '?'}/{cpu_count or '?'}cpu/py{python or '?'}"
        return f"{self.target} on {self.scenario} [{env}]"


@dataclass(frozen=True)
class SeriesPoint:
    """One measurement cell as seen from its series."""

    run_index: int
    run_name: str
    created_at: str
    git_sha: str | None
    seconds: float
    stats: dict
    counters: dict
    metrics: dict

    def to_dict(self) -> dict:
        return {
            "run_index": self.run_index,
            "run_name": self.run_name,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "seconds": self.seconds,
        }


@dataclass
class Series:
    """All comparable history points of one (target, scenario) cell."""

    key: SeriesKey
    points: list[SeriesPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [p.seconds for p in self.points]

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class TrendResult:
    """Verdict of :func:`detect_trend` on one series.

    ``verdict`` is ``"regressing"`` / ``"improving"`` / ``"stable"`` /
    ``"insufficient"`` (fewer than two points).  ``changepoint`` is the
    index of the first point *after* the detected shift (None when
    stable).  ``sustained`` is True when at least two points sit on the
    far side of the shift — a single slow latest run is flagged but not
    yet sustained, which is what CI trend gates should require before
    failing a build.
    """

    verdict: str
    method: str
    changepoint: int | None = None
    before_median: float | None = None
    after_median: float | None = None
    shift_ratio: float | None = None
    noise_sigma: float | None = None
    score: float | None = None
    sustained: bool = False

    @property
    def flagged(self) -> bool:
        return self.verdict in ("regressing", "improving")

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "method": self.method,
            "changepoint": self.changepoint,
            "before_median": self.before_median,
            "after_median": self.after_median,
            "shift_ratio": self.shift_ratio,
            "noise_sigma": self.noise_sigma,
            "score": self.score,
            "sustained": self.sustained,
        }


@dataclass
class SeriesReport:
    """A series together with its trend verdict (one report row)."""

    series: Series
    trend: TrendResult

    def to_dict(self) -> dict:
        key = self.series.key
        return {
            "target": key.target,
            "scenario": key.scenario,
            "spec_hash": key.spec_hash,
            "env": list(key.env),
            "config": list(key.config),
            "samples": len(self.series),
            "latest_seconds": (self.series.points[-1].seconds
                               if self.series.points else None),
            "trend": self.trend.to_dict(),
            "points": [p.to_dict() for p in self.series.points],
        }


# --------------------------------------------------------------------- #
# loading and grouping
# --------------------------------------------------------------------- #
def load_history(path: str | Path = HISTORY_FILE, *,
                 strict: bool = True) -> list[BenchRun]:
    """Read every run of a ``BENCH_history.jsonl`` trajectory, in order.

    Both schema versions load (readers accept anything <= the current
    version).  A malformed line raises :class:`ValidationError` naming
    the line number; with ``strict=False`` bad lines are skipped instead
    — the analysis tools prefer a partial trajectory over none when a
    crashed append left a torn line.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"history file not found: {path}")
    runs: list[BenchRun] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                runs.append(BenchRun.from_json(line))
            except ValidationError as exc:
                if strict:
                    raise ValidationError(
                        f"{path}:{lineno}: {exc}") from None
    return runs


def build_series(runs: list[BenchRun], *,
                 metric: str = "median") -> list[Series]:
    """Group history cells into comparable time series.

    Points appear in history (append) order, which is chronological.
    Series are returned sorted by (target, scenario, spec_hash) and then
    by environment, so cells re-measured on a new machine show up as a
    sibling series rather than a phantom step in the old one.

    ``metric`` may be a timing stat or a per-cell metrics field such as
    ``peak_rss_bytes``; cells recorded before that metric existed have no
    value for it and are skipped rather than polluting the series with
    phantom zeros.
    """
    groups: dict[SeriesKey, Series] = {}
    for run_index, run in enumerate(runs):
        env_key = env_fingerprint(run.env)
        cfg = run.config or {}
        git_sha = run.env.get("git_sha")
        for m in run.measurements:
            if not m.ok:
                # timed-out cells carry placeholder stats — a lower bound,
                # not a timing — and would register as phantom steps
                continue
            value = m.value(metric)
            if value is None:
                continue
            key = SeriesKey(
                target=m.target,
                scenario=m.scenario,
                spec_hash=m.spec_hash,
                env=env_key,
                config=(m.rank, cfg.get("dtype"), cfg.get("backend"),
                        cfg.get("num_workers")),
            )
            series = groups.get(key)
            if series is None:
                series = groups[key] = Series(key)
            series.points.append(SeriesPoint(
                run_index=run_index,
                run_name=run.name,
                created_at=run.created_at,
                git_sha=git_sha,
                seconds=value,
                stats=m.stats,
                counters=m.counters,
                metrics=m.metrics,
            ))
    ordered = sorted(groups.values(),
                     key=lambda s: (s.key.target, s.key.scenario,
                                    s.key.spec_hash,
                                    tuple(str(v) for v in s.key.env),
                                    tuple(str(v) for v in s.key.config)))
    return ordered


# --------------------------------------------------------------------- #
# trend / changepoint detection
# --------------------------------------------------------------------- #
def detect_trend(values: list[float], *,
                 min_shift: float = DEFAULT_MIN_SHIFT,
                 min_sigma: float = DEFAULT_MIN_SIGMA) -> TrendResult:
    """Classify one time series of seconds as stable, regressing or improving.

    For series of five or more points, the candidate changepoint is the
    split (at least two points before, one after) minimising the total
    absolute deviation of each side around its own median — robust L1
    segmentation, which localises the step even when a stray point sits
    on the wrong side.  That split's median shift is then scored as
    ``|median(after) - median(before)| / sigma`` where ``sigma`` is the
    median absolute deviation of the split's residuals (scaled to
    Gaussian-sigma units) floored at 2% of the prefix median, so
    identical recorded values cannot produce an infinite score.  The
    split is a changepoint when it clears ``min_sigma`` *and* shifts the
    median by at least ``min_shift`` relatively — a shift must be both
    statistically and practically significant.

    Shorter series (2-4 points) cannot support a MAD estimate; they use a
    pairwise check of the last point against the median of the prior
    points with the same ``min_shift`` threshold (``method="pairwise"``).
    """
    if min_shift < 0:
        raise ValidationError(f"min_shift must be >= 0, got {min_shift}")
    if min_sigma <= 0:
        raise ValidationError(f"min_sigma must be > 0, got {min_sigma}")
    values = [float(v) for v in values]
    n = len(values)
    if n < 2:
        return TrendResult(verdict="insufficient", method="none")

    if n < 5:
        prior = values[:-1]
        last = values[-1]
        ref = quantile(prior, 0.5)
        if ref <= 0:
            return TrendResult(verdict="insufficient", method="pairwise")
        ratio = last / ref
        if ratio > 1.0 + min_shift:
            verdict = "regressing"
        elif ratio < 1.0 - min_shift:
            verdict = "improving"
        else:
            verdict = "stable"
        return TrendResult(
            verdict=verdict,
            method="pairwise",
            changepoint=n - 1 if verdict != "stable" else None,
            before_median=ref,
            after_median=last,
            shift_ratio=ratio,
            sustained=False,
        )

    best: tuple[float, int, float, float, list[float]] | None = None
    for k in range(2, n):  # prefix >= 2 points, suffix >= 1
        before, after = values[:k], values[k:]
        bm = quantile(before, 0.5)
        am = quantile(after, 0.5)
        residuals = ([abs(v - bm) for v in before]
                     + [abs(v - am) for v in after])
        cost = sum(residuals)
        if best is None or cost < best[0]:
            best = (cost, k, bm, am, residuals)

    _, k, bm, am, residuals = best
    mad_sigma = _MAD_SIGMA_SCALE * quantile(residuals, 0.5)
    sigma = max(mad_sigma, _REL_NOISE_FLOOR * max(bm, 1e-12))
    score = abs(am - bm) / sigma
    shift_ratio = am / bm if bm > 0 else None
    relative_shift = abs(am - bm) / bm if bm > 0 else 0.0
    if score >= min_sigma and relative_shift >= min_shift:
        verdict = "regressing" if am > bm else "improving"
        return TrendResult(
            verdict=verdict,
            method="changepoint",
            changepoint=k,
            before_median=bm,
            after_median=am,
            shift_ratio=shift_ratio,
            noise_sigma=sigma,
            score=score,
            sustained=(n - k) >= 2,
        )
    return TrendResult(
        verdict="stable",
        method="changepoint",
        before_median=bm,
        after_median=am,
        shift_ratio=shift_ratio,
        noise_sigma=sigma,
        score=score,
    )


def analyze_history(runs: list[BenchRun], *,
                    metric: str = "median",
                    min_shift: float = DEFAULT_MIN_SHIFT,
                    min_sigma: float = DEFAULT_MIN_SIGMA,
                    min_samples: int = 2) -> list[SeriesReport]:
    """Build series from ``runs`` and attach a trend verdict to each.

    Series with fewer than ``min_samples`` points are dropped — a single
    sample has no trend and would only pad the report.
    """
    reports = []
    for series in build_series(runs, metric=metric):
        if len(series) < min_samples:
            continue
        trend = detect_trend(series.values(), min_shift=min_shift,
                             min_sigma=min_sigma)
        reports.append(SeriesReport(series=series, trend=trend))
    return reports


# --------------------------------------------------------------------- #
# sparklines
# --------------------------------------------------------------------- #
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """One block character per value, scaled min..max over the series."""
    if not values:
        return ""
    values = [float(v) for v in values]
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[3] * len(values)
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    int((v - lo) / span * len(_BLOCKS)))]
        for v in values
    )
