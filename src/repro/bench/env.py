"""Execution-environment capture for benchmark provenance.

A performance number without its environment is noise: the same kernel is
2-10x apart between laptops, and a regression report is only actionable if
both runs name their interpreter, NumPy build, CPU and source revision.
:func:`capture_environment` collects exactly the fields the paper's own
evaluation tables pin down (hardware, software versions) plus the git SHA
of the working tree.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import sys

import numpy as np

try:
    import resource
except ImportError:  # pragma: no cover - resource is POSIX-only
    resource = None

__all__ = ["capture_environment", "git_revision", "peak_rss_bytes",
           "reset_peak_rss", "vm_hwm_bytes", "cell_peak_rss",
           "utc_now_iso", "env_fingerprint", "env_incompatibilities"]


#: the environment fields whose change makes timings incomparable.  The
#: machine architecture and core count move every kernel by integer
#: factors; the interpreter's major.minor moves the pure-Python layers
#: (dispatch, planning) materially.  Patch releases, NumPy builds and
#: hostnames are deliberately excluded — they shift timings within the
#: noise band the compare threshold already absorbs.
FINGERPRINT_FIELDS = ("machine", "cpu_count", "python")


def env_fingerprint(env: dict) -> tuple:
    """The comparability key of a captured environment.

    Two benchmark runs are *comparable* — their wall-clock ratios mean
    something — only when their fingerprints match: same machine
    architecture, same CPU count, same Python major.minor.  Used both by
    :func:`repro.bench.compare.compare_runs` (to refuse silent
    cross-machine verdicts) and by :mod:`repro.bench.history` (to split
    time series at environment changes).
    """
    python = str(env.get("python") or "")
    major_minor = ".".join(python.split(".")[:2])
    cpu_count = env.get("cpu_count")
    return (
        str(env.get("machine") or ""),
        int(cpu_count) if cpu_count is not None else None,
        major_minor,
    )


def env_incompatibilities(a: dict, b: dict) -> list[str]:
    """Human-readable list of material differences between two envs.

    Empty when the environments are comparable.
    """
    fa, fb = env_fingerprint(a), env_fingerprint(b)
    return [
        f"{name}: {va!r} vs {vb!r}"
        for name, va, vb in zip(FINGERPRINT_FIELDS, fa, fb)
        if va != vb
    ]


def peak_rss_bytes() -> int | None:
    """Peak resident-set size of this process, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux and in bytes
    on macOS; both are normalised to bytes here.  Returns ``None`` where
    the :mod:`resource` module is unavailable (non-POSIX platforms).  The
    value is a high-water mark — it only ever grows — so "fits in X MB"
    gates read the peak of everything measured up to the capture point.
    """
    if resource is None:
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(maxrss)
    return int(maxrss) * 1024


def reset_peak_rss() -> bool:
    """Reset the kernel's resident-set high-water mark for this process.

    Writing ``5`` to ``/proc/self/clear_refs`` zeroes ``VmHWM`` (Linux >=
    4.0), which is what makes a *per-cell* peak measurement possible:
    ``getrusage``'s ``ru_maxrss`` can never be reset, so without this every
    cell would just report the largest cell seen so far.  Returns whether
    the reset took effect; on non-Linux platforms (no procfs) it returns
    False and callers fall back to the cumulative process peak.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        return False
    return True


def vm_hwm_bytes() -> int | None:
    """Current ``VmHWM`` (peak RSS since the last reset), in bytes.

    Parsed from ``/proc/self/status``; None where procfs is unavailable.
    Pairs with :func:`reset_peak_rss` — reset before the work, read after —
    to bound the peak of just that work.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def cell_peak_rss(reset_ok: bool) -> tuple[int | None, str]:
    """Peak RSS of the work since the last :func:`reset_peak_rss` attempt.

    ``reset_ok`` is that attempt's return value.  When the reset took,
    the resettable ``VmHWM`` counter bounds just the cell:
    ``(bytes, "cell")``.  Otherwise — sandboxed ``/proc/self/clear_refs``,
    non-Linux — the cumulative ``getrusage`` high-water mark is returned as
    ``(bytes, "process")``: a number that only ever grows across cells,
    labelled so consumers know whether a per-cell memory gate is
    meaningful.
    """
    if reset_ok:
        hwm = vm_hwm_bytes()
        if hwm is not None:
            return hwm, "cell"
    return peak_rss_bytes(), "process"


def utc_now_iso() -> str:
    """Current UTC time as an ISO-8601 string (second resolution)."""
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )


def git_revision(cwd: str | None = None) -> str | None:
    """Short git SHA of ``cwd`` (or the process cwd); None outside a repo.

    A ``-dirty`` suffix marks uncommitted changes — a measurement of an
    edited tree must not claim the provenance of a clean commit.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    if proc.returncode != 0 or not sha:
        return None
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return sha
    if status.returncode == 0 and status.stdout.strip():
        return f"{sha}-dirty"
    return sha


def capture_environment(cwd: str | None = None) -> dict:
    """Snapshot the measurement environment as a plain JSON-safe dict."""
    uname = platform.uname()
    return {
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "os": f"{uname.system} {uname.release}",
        "machine": uname.machine,
        "processor": uname.processor or uname.machine,
        "cpu_count": os.cpu_count(),
        "hostname": uname.node,
        "git_sha": git_revision(cwd),
        "peak_rss_bytes": peak_rss_bytes(),
        "captured_at": utc_now_iso(),
    }
