"""Out-of-core smoke proof: build + MTTKRP at ladder scale under a RAM cap.

``python -m repro.bench.ooc_smoke`` drives three phases around one
``scale_ladder_xl`` tensor (10^7 nonzeros by default):

1. **stream** (capped subprocess): generate the tensor straight into a
   shard manifest, build HB-CSF through the chunk-streaming path and run
   one MTTKRP — all under ``resource.setrlimit(RLIMIT_AS, ...)`` — and
   assert the per-phase peak RSS stays below ``--max-rss-multiple`` times
   the largest shard's byte size.
2. **inmem** (same cap, subprocess): attempt the identical build through
   the in-memory path and require it to die with ``MemoryError`` — the
   proof that the cap is one the dense pipeline genuinely cannot fit.
3. **verify** (parent, uncapped): load the very shard files the stream
   phase wrote into one in-memory tensor, build + MTTKRP through the
   in-memory path, and require the streamed MTTKRP output to be
   bit-identical (``float64``-view-as-``uint64`` equality, not allclose).

The parent assembles the phase metrics into a schema-v2
:class:`~repro.bench.schema.BenchRun` and writes ``BENCH_<name>.json``,
so CI can upload the artifact and ``repro-bench compare`` /
``history trend`` can gate ``peak_rss_bytes`` on it like any other run.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.bench.env import capture_environment, cell_peak_rss, reset_peak_rss, utc_now_iso
from repro.bench.schema import (
    BenchRun,
    HISTORY_FILE,
    Measurement,
    append_history,
    save_run,
)
from repro.bench.targets import bench_factors
from repro.formats import get_format
from repro.scenarios.cache import materialize, materialize_sharded
from repro.tensor.shards import open_sharded
from repro.scenarios.suites import get_suite

__all__ = ["main"]

#: ladder tier the smoke runs on (scaled down to ``--nnz``).
TIER = "xl-10m"
TIER_NNZ = 10_000_000

DEFAULT_NNZ = TIER_NNZ
#: nonzeros per shard.  The HB-CSF representation of the xl-10m tier is
#: resident by design (~350 MB: the workload is fiber-heavy, so the B-CSF
#: group holds >90% of the nonzeros), so the shard size is chosen to make
#: the 3x-largest-shard budget a real but attainable bound: largest shard
#: 183 MiB -> budget 549 MiB, ~200 MiB of headroom over the rep for the
#: streaming passes' transients.
DEFAULT_SHARD_NNZ = 6_000_000
#: address-space cap for the capped phases.  The streaming phase maps the
#: shard files and the sorted view on top of the interpreter's baseline,
#: so the cap is an address-space budget, not an RSS one.  Measured at the
#: default scale: streaming VmPeak ~900 MiB, in-memory VmPeak ~1.68 GiB —
#: 1280 MiB clears the streaming path with ~380 MiB of headroom while the
#: in-memory concatenate + lexsort pipeline reliably dies with
#: ``MemoryError`` ~400 MiB short of what it needs.
DEFAULT_RLIMIT_MB = 1_280
DEFAULT_MULTIPLE = 3.0
MODE = 0


def _spec(nnz: int):
    specs = dict((name, s) for name, s in get_suite("scale_ladder_xl").specs())
    return specs[TIER].with_scale(nnz / TIER_NNZ)


def _apply_rlimit(mb: int) -> None:
    import resource

    limit = mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))


def _trim_allocator() -> None:
    """Return freed pages to the kernel so the next cell's RSS high-water
    mark measures that cell, not the allocator's retained heap from the
    previous one."""
    from repro.tensor.shards import trim_allocator

    trim_allocator()


def _timed_cell(label: str, fn):
    """Run ``fn`` once with a fresh RSS high-water mark; return
    (result, seconds, peak_rss_bytes, scope)."""
    _trim_allocator()
    reset_ok = reset_peak_rss()
    t0 = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - t0
    rss, scope = cell_peak_rss(reset_ok)
    print(f"[ooc-smoke] {label}: {seconds:.2f}s, "
          f"peak RSS {rss / 2**20:.1f} MB ({scope})" if rss is not None
          else f"[ooc-smoke] {label}: {seconds:.2f}s, peak RSS unavailable",
          flush=True)
    return result, seconds, rss, scope


def _phase_stream(args) -> int:
    """Capped: shard, build HB-CSF streaming, run MTTKRP, gate on RSS."""
    if args.rlimit_mb:
        _apply_rlimit(args.rlimit_mb)
    spec = _spec(args.nnz)
    fmt = get_format(args.format)
    work = args.work_dir

    sharded, gen_s, gen_rss, scope = _timed_cell(
        "generate sharded", lambda: materialize_sharded(
            spec, root=os.path.join(work, "shards"),
            shard_nnz=args.shard_nnz))
    largest = sharded.largest_shard_bytes
    budget = args.max_rss_multiple * largest
    print(f"[ooc-smoke] {sharded.num_shards} shards, largest "
          f"{largest / 2**20:.1f} MB -> RSS budget "
          f"{budget / 2**20:.1f} MB", flush=True)

    rep, build_s, build_rss, _ = _timed_cell(
        f"streaming {args.format} build",
        lambda: fmt.build(sharded, MODE, None, None))
    factors = bench_factors(sharded.shape, args.rank)
    out, mttkrp_s, mttkrp_rss, _ = _timed_cell(
        "streaming mttkrp",
        lambda: fmt.mttkrp(rep, factors, MODE))
    np.save(os.path.join(work, "stream_out.npy"), out)

    cells = {
        f"build.ooc.{args.format}": (build_s, build_rss),
        f"kernel.ooc.{args.format}": (mttkrp_s, mttkrp_rss),
    }
    failures = []
    for name, (_, rss) in cells.items():
        if rss is None:
            failures.append(f"{name}: peak RSS unavailable on this kernel")
        elif rss > budget:
            failures.append(
                f"{name}: peak RSS {rss / 2**20:.1f} MB exceeds "
                f"{args.max_rss_multiple}x largest shard "
                f"({budget / 2**20:.1f} MB)")
    with open(os.path.join(work, "stream_metrics.json"), "w") as fh:
        json.dump({
            "spec_hash": spec.spec_hash(),
            "shape": list(sharded.shape),
            "nnz": sharded.nnz,
            "num_shards": sharded.num_shards,
            "largest_shard_bytes": largest,
            "generate_seconds": gen_s,
            "generate_rss": gen_rss,
            "rss_scope": scope,
            "cells": {name: {"seconds": s, "peak_rss_bytes": rss}
                      for name, (s, rss) in cells.items()},
        }, fh, indent=2)
    if failures:
        for line in failures:
            print(f"[ooc-smoke] FAIL {line}", file=sys.stderr, flush=True)
        return 1
    print("[ooc-smoke] stream phase OK: both cells within the RSS budget",
          flush=True)
    return 0


def _phase_inmem(args) -> int:
    """Capped: the in-memory path must exhaust the same address-space cap."""
    if args.rlimit_mb:
        _apply_rlimit(args.rlimit_mb)
    spec = _spec(args.nnz)
    fmt = get_format(args.format)
    try:
        tensor = materialize(spec)
        rep = fmt.build(tensor, MODE, None, None)
        out = fmt.mttkrp(rep, bench_factors(tensor.shape, args.rank), MODE)
    except MemoryError:
        print("[ooc-smoke] in-memory path hit MemoryError under the cap "
              "(expected)", flush=True)
        return 0
    print(f"[ooc-smoke] UNEXPECTED: in-memory path fit under "
          f"{args.rlimit_mb} MB (output {out.shape}); lower --rlimit-mb or "
          "raise --nnz", file=sys.stderr, flush=True)
    return 1


def _run_phase(phase: str, args, work: str) -> int:
    cmd = [sys.executable, "-m", "repro.bench.ooc_smoke",
           "--phase", phase, "--work-dir", work,
           "--nnz", str(args.nnz), "--shard-nnz", str(args.shard_nnz),
           "--rlimit-mb", str(args.rlimit_mb),
           "--max-rss-multiple", str(args.max_rss_multiple),
           "--rank", str(args.rank), "--format", args.format]
    return subprocess.call(cmd)


def _measurement(name: str, metrics_doc: dict, rank: int) -> Measurement:
    cell = metrics_doc["cells"][name]
    s = cell["seconds"]
    stats = {"repeats": 1, "warmup": 0, "min": s, "median": s, "p95": s,
             "max": s, "mean": s, "stddev": 0.0, "total": s, "laps": [s]}
    metrics = {"num_shards": float(metrics_doc["num_shards"]),
               "largest_shard_bytes": float(
                   metrics_doc["largest_shard_bytes"])}
    if cell["peak_rss_bytes"] is not None:
        metrics["peak_rss_bytes"] = float(cell["peak_rss_bytes"])
    return Measurement(
        target=name, scenario=TIER, spec_hash=metrics_doc["spec_hash"],
        shape=tuple(metrics_doc["shape"]), nnz=metrics_doc["nnz"],
        rank=rank, stats=stats, metrics=metrics)


def _orchestrate(args) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-ooc-smoke-") as work:
        print(f"[ooc-smoke] nnz={args.nnz:,} shard_nnz={args.shard_nnz:,} "
              f"cap={args.rlimit_mb} MB format={args.format}", flush=True)
        rc = _run_phase("stream", args, work)
        if rc != 0:
            print("[ooc-smoke] stream phase failed", file=sys.stderr)
            return rc
        if not args.skip_inmem_proof:
            rc = _run_phase("inmem", args, work)
            if rc != 0:
                print("[ooc-smoke] in-memory proof failed", file=sys.stderr)
                return rc

        # bit-identity: uncapped in-memory reference vs the streamed output.
        # The reference is built from the SAME shard files the stream phase
        # wrote — batched generation consumes the rng differently from the
        # single-call materialize(), so a fresh in-memory materialisation
        # would be a different sample of the spec, not the same tensor.
        fmt = get_format(args.format)
        tensor = open_sharded(os.path.join(work, "shards")).to_coo()
        rep = fmt.build(tensor, MODE, None, None)
        want = fmt.mttkrp(rep, bench_factors(tensor.shape, args.rank), MODE)
        got = np.load(os.path.join(work, "stream_out.npy"))
        if not np.array_equal(got.view(np.uint64), want.view(np.uint64)):
            diff = int(np.count_nonzero(
                got.view(np.uint64) != want.view(np.uint64)))
            print(f"[ooc-smoke] FAIL streamed MTTKRP differs from in-memory "
                  f"in {diff} of {want.size} entries", file=sys.stderr)
            return 1
        print("[ooc-smoke] bit-identity OK: streamed MTTKRP == in-memory "
              f"({want.shape[0]}x{want.shape[1]} float64)", flush=True)

        with open(os.path.join(work, "stream_metrics.json")) as fh:
            metrics_doc = json.load(fh)

    run = BenchRun(
        name=args.name, created_at=utc_now_iso(), env=capture_environment(),
        config={"nnz": args.nnz, "shard_nnz": args.shard_nnz,
                "rlimit_mb": args.rlimit_mb,
                "max_rss_multiple": args.max_rss_multiple,
                "rank": args.rank, "format": args.format},
        measurements=[_measurement(name, metrics_doc, args.rank)
                      for name in sorted(metrics_doc["cells"])])
    run.env["peak_rss_scope"] = metrics_doc["rss_scope"]
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{args.name}.json")
    save_run(run, out_path)
    print(f"[ooc-smoke] wrote {out_path}", flush=True)
    if not args.no_history:
        history = append_history(
            run, os.path.join(args.out_dir, HISTORY_FILE))
        print(f"[ooc-smoke] appended to {history}", flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.ooc_smoke", description=__doc__.split("\n")[0])
    parser.add_argument("--nnz", type=int, default=DEFAULT_NNZ,
                        help="nonzero budget (default 10^7)")
    parser.add_argument("--shard-nnz", type=int, default=DEFAULT_SHARD_NNZ,
                        help="nonzeros per shard (default 6x10^6)")
    parser.add_argument("--rlimit-mb", type=int, default=DEFAULT_RLIMIT_MB,
                        help="RLIMIT_AS for the capped phases, MB "
                             "(0 disables)")
    parser.add_argument("--max-rss-multiple", type=float,
                        default=DEFAULT_MULTIPLE,
                        help="per-cell peak-RSS budget as a multiple of the "
                             "largest shard's bytes")
    parser.add_argument("--rank", type=int, default=32)
    parser.add_argument("--format", default="hb-csf",
                        help="format to build/run (default hb-csf)")
    parser.add_argument("--name", default="ooc",
                        help="run name -> BENCH_<name>.json")
    parser.add_argument("--out-dir", default=".")
    parser.add_argument("--skip-inmem-proof", action="store_true",
                        help="skip the capped in-memory MemoryError proof")
    parser.add_argument("--no-history", action="store_true",
                        help=f"do not append the run to {HISTORY_FILE}")
    parser.add_argument("--phase", choices=("stream", "inmem"), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--work-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.phase == "stream":
        return _phase_stream(args)
    if args.phase == "inmem":
        return _phase_inmem(args)
    return _orchestrate(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
