"""Performance measurement and regression tracking.

The paper's contribution *is* measured speed, so this package gives the
repo a machine-readable performance record:

* :mod:`repro.bench.targets` — registry of timeable operations (exact
  MTTKRP kernels, format builders, gpusim simulations, CPD-ALS);
* :mod:`repro.bench.runner` — warmup/repeat sweeps of targets x scenarios
  with robust statistics;
* :mod:`repro.bench.schema` — versioned JSON artifacts
  (``BENCH_<name>.json`` + append-only ``BENCH_history.jsonl``);
* :mod:`repro.bench.compare` — before/after regression verdicts (with
  environment comparability checks);
* :mod:`repro.bench.history` — longitudinal trend / changepoint analytics
  over the history trajectory;
* :mod:`repro.bench.attribution` — counter-movement attribution of
  detected regressions to a probable cause;
* :mod:`repro.bench.cli` — ``repro-bench list | run | matrix | compare |
  history``.

Every perf-focused PR should attach a baseline and candidate artifact and
let ``repro-bench compare`` state the verdict (see README "Benchmarking").
"""

from repro.bench.attribution import (
    Attribution,
    CounterMove,
    attribute_regression,
    attribute_series,
    rank_counter_moves,
)
from repro.bench.compare import CompareReport, Delta, compare_runs
from repro.bench.env import (
    capture_environment,
    env_fingerprint,
    env_incompatibilities,
)
from repro.bench.history import (
    Series,
    SeriesKey,
    SeriesPoint,
    SeriesReport,
    TrendResult,
    analyze_history,
    build_series,
    detect_trend,
    load_history,
    sparkline,
)
from repro.bench.runner import BUDGETS, BenchConfig, run_benchmarks
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchRun,
    Measurement,
    append_history,
    bench_artifact_path,
    load_run,
    save_run,
)
from repro.bench.targets import (
    BenchTarget,
    expand_targets,
    get_target,
    register_target,
    target_groups,
    target_names,
)

__all__ = [
    "SCHEMA_VERSION",
    "BUDGETS",
    "Attribution",
    "BenchConfig",
    "BenchRun",
    "BenchTarget",
    "CompareReport",
    "CounterMove",
    "Delta",
    "Measurement",
    "Series",
    "SeriesKey",
    "SeriesPoint",
    "SeriesReport",
    "TrendResult",
    "analyze_history",
    "append_history",
    "attribute_regression",
    "attribute_series",
    "bench_artifact_path",
    "build_series",
    "capture_environment",
    "compare_runs",
    "detect_trend",
    "env_fingerprint",
    "env_incompatibilities",
    "expand_targets",
    "get_target",
    "load_history",
    "load_run",
    "rank_counter_moves",
    "register_target",
    "run_benchmarks",
    "save_run",
    "sparkline",
    "target_groups",
    "target_names",
]
