"""Performance measurement and regression tracking.

The paper's contribution *is* measured speed, so this package gives the
repo a machine-readable performance record:

* :mod:`repro.bench.targets` — registry of timeable operations (exact
  MTTKRP kernels, format builders, gpusim simulations, CPD-ALS);
* :mod:`repro.bench.runner` — warmup/repeat sweeps of targets x scenarios
  with robust statistics;
* :mod:`repro.bench.schema` — versioned JSON artifacts
  (``BENCH_<name>.json`` + append-only ``BENCH_history.jsonl``);
* :mod:`repro.bench.compare` — before/after regression verdicts;
* :mod:`repro.bench.cli` — ``repro-bench list | run | matrix | compare``.

Every perf-focused PR should attach a baseline and candidate artifact and
let ``repro-bench compare`` state the verdict (see README "Benchmarking").
"""

from repro.bench.compare import CompareReport, Delta, compare_runs
from repro.bench.env import capture_environment
from repro.bench.runner import BUDGETS, BenchConfig, run_benchmarks
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchRun,
    Measurement,
    append_history,
    bench_artifact_path,
    load_run,
    save_run,
)
from repro.bench.targets import (
    BenchTarget,
    expand_targets,
    get_target,
    register_target,
    target_groups,
    target_names,
)

__all__ = [
    "SCHEMA_VERSION",
    "BUDGETS",
    "BenchConfig",
    "BenchRun",
    "BenchTarget",
    "CompareReport",
    "Delta",
    "Measurement",
    "append_history",
    "bench_artifact_path",
    "capture_environment",
    "compare_runs",
    "expand_targets",
    "get_target",
    "load_run",
    "register_target",
    "run_benchmarks",
    "save_run",
    "target_groups",
    "target_names",
]
