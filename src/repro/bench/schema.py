"""Versioned JSON schema for benchmark runs.

A :class:`BenchRun` is the unit of persistence: one invocation of the
runner over a set of (target, scenario) cells.  It serialises to a plain
dict with a ``schema_version`` discriminator, written as
``BENCH_<name>.json`` at the repo root (the *latest* run, overwritten in
place so diffs are reviewable) plus one line appended to
``BENCH_history.jsonl`` (the *trajectory*, never rewritten).

The schema is deliberately flat and dependency-free so any tool — CI, a
notebook, ``jq`` — can consume it:

.. code-block:: json

    {
      "schema_version": 2,
      "name": "kernels",
      "created_at": "2026-07-28T12:00:00+00:00",
      "env": {"python": "3.12.3", "numpy": "1.26.4", "git_sha": "...",
              "peak_rss_bytes": 123456789},
      "config": {"repeats": 5, "warmup": 1, "rank": 32, "scale": 1.0},
      "measurements": [
        {"target": "kernel.coo", "scenario": "deli", "spec_hash": "...",
         "shape": [2000, 60000, 8000], "nnz": 50000, "rank": 32,
         "stats": {"repeats": 5, "warmup": 1, "min": 0.0018, "median": 0.0019,
                   "p95": 0.0021, "mean": 0.0019, "stddev": 0.0001,
                   "total": 0.0095, "laps": [...]},
         "metrics": {"peak_rss_bytes": 123456789},
         "counters": {"kernel.count": 6, "plan_cache.hits": 5}}
      ]
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.errors import ValidationError
from repro.util.timing import Timer

__all__ = [
    "SCHEMA_VERSION",
    "HISTORY_FILE",
    "Measurement",
    "BenchRun",
    "stats_from_timer",
    "timeout_stats",
    "validate_run_dict",
    "load_run",
    "save_run",
    "append_history",
    "bench_artifact_path",
]

#: bump when the serialised layout changes incompatibly.  Version 2 added
#: the optional per-measurement ``counters`` object (telemetry counter
#: deltas: cache hits, kernel/build stage totals, gpusim work) and the
#: ``peak_rss_bytes`` environment/metric fields.  Version 3 added the
#: optional per-measurement ``status`` field (``"ok"`` when absent;
#: ``"timeout"`` marks a cell that hit the per-cell deadline — its stats
#: are the elapsed wall clock at expiry, not lap timings, and comparison
#: or trend tooling must not treat them as measurements).  Older files
#: still load — readers accept anything <= this version.
SCHEMA_VERSION = 3

#: append-only trajectory file kept next to the ``BENCH_<name>.json`` files.
HISTORY_FILE = "BENCH_history.jsonl"

_STAT_KEYS = ("min", "median", "p95", "mean", "stddev", "total")


def stats_from_timer(timer: Timer, warmup: int) -> dict:
    """Robust summary statistics of one measured cell.

    A thin renaming of :meth:`repro.util.timing.Timer.stats` into the
    serialised field names (``min`` for ``best``, ``repeats`` for
    ``count``); raises :class:`ValidationError` on a timer with no laps.
    """
    stats = timer.stats()
    return {
        "repeats": stats["count"],
        "warmup": warmup,
        "min": stats["best"],
        "median": stats["median"],
        "p95": stats["p95"],
        "max": stats["max"],
        "mean": stats["mean"],
        "stddev": stats["stddev"],
        "total": stats["total"],
        "laps": stats["laps"],
    }


def timeout_stats(elapsed: float, warmup: int) -> dict:
    """Placeholder stats for a cell that hit its per-cell deadline.

    Every summary stat is set to the elapsed wall clock at expiry — a lower
    bound on the true cost, kept numeric so version-agnostic readers don't
    crash — and ``repeats`` is 0 / ``laps`` empty so the record cannot be
    mistaken for a completed measurement.  The measurement's ``status``
    field (``"timeout"``) is the authoritative marker.
    """
    stats = {key: float(elapsed) for key in _STAT_KEYS}
    stats.update({"repeats": 0, "warmup": warmup,
                  "max": float(elapsed), "laps": []})
    return stats


@dataclass(frozen=True)
class Measurement:
    """One timed (target, scenario) cell.

    ``counters`` holds the telemetry counter deltas observed across the
    cell's setup + warmup + timed laps (:mod:`repro.telemetry`): cache
    hit/miss movement, ``kernel.count``/``kernel.seconds`` stage totals,
    simulated gpusim work.  Empty for cells that touched no instrumented
    layer and for version-1 files.

    ``status`` is ``"ok"`` for a completed measurement and ``"timeout"``
    for a cell that hit the runner's per-cell deadline (its stats are
    :func:`timeout_stats` placeholders).  Non-ok cells are incomparable:
    ``compare`` and ``history`` tooling must skip them rather than read
    their stats as timings.
    """

    target: str
    scenario: str
    spec_hash: str
    shape: tuple[int, ...]
    nnz: int
    rank: int
    stats: dict
    metrics: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def seconds(self, metric: str = "median") -> float:
        if metric not in _STAT_KEYS:
            raise ValidationError(
                f"unknown stat {metric!r}; choose one of {', '.join(_STAT_KEYS)}"
            )
        return float(self.stats[metric])

    def value(self, metric: str = "median") -> float | None:
        """Comparable value of ``metric`` — a timing stat or a metrics field.

        Timing stats (``min``/``median``/...) come from ``stats`` and are
        always present; anything else (e.g. ``peak_rss_bytes``) is looked
        up in the per-cell ``metrics`` dict and may be ``None`` for cells
        recorded before that metric existed — callers must treat ``None``
        as "not comparable", not as zero.
        """
        if metric in _STAT_KEYS:
            return float(self.stats[metric])
        raw = self.metrics.get(metric)
        return None if raw is None else float(raw)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "scenario": self.scenario,
            "spec_hash": self.spec_hash,
            "shape": list(self.shape),
            "nnz": self.nnz,
            "rank": self.rank,
            "stats": dict(self.stats),
            "metrics": dict(self.metrics),
            "counters": dict(self.counters),
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Measurement":
        try:
            return cls(
                target=str(data["target"]),
                scenario=str(data["scenario"]),
                spec_hash=str(data.get("spec_hash", "")),
                shape=tuple(int(s) for s in data.get("shape", ())),
                nnz=int(data.get("nnz", 0)),
                rank=int(data.get("rank", 0)),
                stats=dict(data["stats"]),
                metrics=dict(data.get("metrics", {})),
                counters=dict(data.get("counters", {})),
                status=str(data.get("status", "ok")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed measurement: {exc}") from None


@dataclass
class BenchRun:
    """One serialisable benchmark run (a set of measurements + provenance)."""

    name: str
    created_at: str
    env: dict
    config: dict
    measurements: list[Measurement] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def measurement(self, target: str, scenario: str) -> Measurement | None:
        for m in self.measurements:
            if m.target == target and m.scenario == scenario:
                return m
        return None

    def keys(self) -> list[tuple[str, str]]:
        return [(m.target, m.scenario) for m in self.measurements]

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "created_at": self.created_at,
            "env": dict(self.env),
            "config": dict(self.config),
            "measurements": [m.to_dict() for m in self.measurements],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRun":
        validate_run_dict(data)
        return cls(
            name=str(data["name"]),
            created_at=str(data["created_at"]),
            env=dict(data["env"]),
            config=dict(data.get("config", {})),
            measurements=[Measurement.from_dict(m) for m in data["measurements"]],
            schema_version=int(data["schema_version"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchRun":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"bench run is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def validate_run_dict(data: object) -> None:
    """Structural schema check; raises :class:`ValidationError` on problems."""
    if not isinstance(data, dict):
        raise ValidationError(
            f"bench run must be a JSON object, got {type(data).__name__}")
    version = data.get("schema_version")
    if not isinstance(version, int):
        raise ValidationError('bench run needs an integer "schema_version"')
    if version > SCHEMA_VERSION:
        raise ValidationError(
            f"bench run has schema_version {version}, this build reads "
            f"<= {SCHEMA_VERSION}")
    for key, kind in (("name", str), ("created_at", str), ("env", dict),
                      ("measurements", list)):
        if not isinstance(data.get(key), kind):
            raise ValidationError(
                f'bench run needs a "{key}" of type {kind.__name__}')
    for i, m in enumerate(data["measurements"]):
        if not isinstance(m, dict):
            raise ValidationError(f"measurement #{i} is not an object")
        for key in ("target", "scenario", "stats"):
            if key not in m:
                raise ValidationError(f'measurement #{i} lacks "{key}"')
        stats = m["stats"]
        if not isinstance(stats, dict):
            raise ValidationError(f"measurement #{i} stats is not an object")
        if m.get("status", "ok") != "ok":
            # a timed-out / failed cell carries placeholder stats; only its
            # identity fields (checked above) are load-bearing
            continue
        for key in _STAT_KEYS:
            if not isinstance(stats.get(key), (int, float)):
                raise ValidationError(
                    f'measurement #{i} stats lacks numeric "{key}"')


def bench_artifact_path(name: str, out_dir: str | os.PathLike = ".") -> Path:
    """``<out_dir>/BENCH_<name>.json`` (the conventional artifact name)."""
    safe = name.strip().replace(os.sep, "-").replace(" ", "-")
    if not safe:
        raise ValidationError("bench run name must be non-empty")
    return Path(out_dir) / f"BENCH_{safe}.json"


def load_run(path: str | os.PathLike) -> BenchRun:
    """Read and validate a ``BENCH_*.json`` file."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ValidationError(f"cannot read bench run {path!r}: {exc}") from None
    return BenchRun.from_json(text)


def save_run(run: BenchRun, path: str | os.PathLike) -> Path:
    """Atomically write ``run`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(run.to_json())
        fh.write("\n")
    os.replace(tmp, path)
    return path


def append_history(run: BenchRun, path: str | os.PathLike) -> Path:
    """Append ``run`` as one JSON line to the trajectory file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(run.to_json(indent=None))
        fh.write("\n")
    return path
