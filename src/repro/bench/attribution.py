"""Counter-based regression attribution: *why* did this cell slow down?

A schema-v2 bench cell carries the telemetry counter deltas of everything
the cell did — cache hits and misses, build/kernel stage totals, shard
dispatches, tuner probes.  When a cell regresses, diffing those counters
against a reference run usually names the cause outright: a plan-cache
miss storm shows up as ``plan_cache.misses`` exploding, growing build
share as ``build.seconds`` eating the cell, a partition shift as
``parallel.shards`` moving.

:func:`attribute_regression` ranks the most-moved counters between a
reference and a candidate cell (relative movement, scale-aware for
``.seconds`` counters, plus derived ``.share`` features for stage-time
counters) and maps the top mover through a small cause table into a
one-line probable cause.  :func:`attribute_series` applies it to a
:class:`repro.bench.history.Series`, picking the reference from before the
detected changepoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.history import Series, TrendResult, detect_trend
from repro.util.errors import ValidationError
from repro.util.timing import quantile

__all__ = [
    "CounterMove",
    "Attribution",
    "rank_counter_moves",
    "attribute_regression",
    "attribute_series",
    "cause_for",
]

#: movement below this fraction of the reference value is noise, not a
#: cause candidate.
_MIN_RELATIVE_MOVE = 0.05

#: a stage's share of total stage seconds must move by this many points
#: before the derived ``.share`` feature is reported.
_MIN_SHARE_MOVE = 0.10

#: ordered prefix → phrase table; first match wins, so the specific rules
#: (plan_cache.misses) sit above the generic ones (plan_cache.).
_CAUSE_RULES: tuple[tuple[str, str], ...] = (
    ("cache.quarantined", "cache corruption storm — quarantined entries "
                          "forced regeneration"),
    ("faults.injected", "fault injection active — cell ran under a "
                        "REPRO_FAULTS schedule"),
    ("faults.recovered", "recovery work on the hot path — damaged state "
                         "rebuilt mid-cell"),
    ("faults.", "fault-harness activity changed"),
    ("recovery.", "recovery stages ran — torn or corrupt state was "
                  "rebuilt mid-cell"),
    ("plan_cache.misses", "plan-cache miss storm — representations "
                          "rebuilt instead of reused"),
    ("plan_cache.evictions", "plan-cache evictions — working set no "
                             "longer fits the cache budget"),
    ("plan_cache.", "plan-cache behaviour changed"),
    ("decision_cache.misses", "autotuner decision-cache misses — "
                              "probes re-run on the hot path"),
    ("decision_cache.", "autotuner decision-cache behaviour changed"),
    ("tune.probe", "autotuner probe volume changed"),
    ("tune.", "autotuner decide path changed"),
    ("build.seconds.share", "build share of cell time grew — "
                            "preprocessing is dominating"),
    ("build.", "format-build work changed"),
    ("parallel.shards", "shard count changed — partition / "
                        "load-balance shift"),
    ("parallel.", "parallel dispatch behaviour changed"),
    ("kernel.", "kernel invocation volume changed"),
    ("dispatch.", "dispatch path changed"),
    ("als.", "ALS iteration volume changed"),
    ("gpusim.", "simulated GPU work changed"),
)


def cause_for(name: str) -> str:
    """The probable-cause phrase for one counter name."""
    for prefix, phrase in _CAUSE_RULES:
        if name.startswith(prefix):
            return phrase
    return f"counter {name} moved"


@dataclass(frozen=True)
class CounterMove:
    """One counter's movement between the reference and candidate cells."""

    name: str
    reference: float
    candidate: float
    delta: float
    #: delta scaled by the reference magnitude (1.0 = the counter doubled).
    relative: float
    cause: str

    @property
    def score(self) -> float:
        return abs(self.relative)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "reference": self.reference,
            "candidate": self.candidate,
            "delta": self.delta,
            "relative": self.relative,
            "cause": self.cause,
        }

    def describe(self) -> str:
        direction = "+" if self.delta >= 0 else ""
        if self.name.endswith(".share"):
            return (f"{self.name} {self.reference:.0%} -> "
                    f"{self.candidate:.0%}")
        if self.name.endswith(".seconds"):
            return (f"{self.name} {self.reference:.4f}s -> "
                    f"{self.candidate:.4f}s ({direction}{self.delta:.4f}s)")
        return (f"{self.name} {self.reference:g} -> {self.candidate:g} "
                f"({direction}{self.delta:g})")


@dataclass
class Attribution:
    """Ranked counter movements plus the synthesised probable cause."""

    moves: list[CounterMove] = field(default_factory=list)
    probable_cause: str = ""
    reference_seconds: float | None = None
    candidate_seconds: float | None = None

    @property
    def slowdown(self) -> float | None:
        if not self.reference_seconds or self.candidate_seconds is None:
            return None
        return self.candidate_seconds / self.reference_seconds

    def to_dict(self) -> dict:
        return {
            "probable_cause": self.probable_cause,
            "reference_seconds": self.reference_seconds,
            "candidate_seconds": self.candidate_seconds,
            "slowdown": self.slowdown,
            "moves": [m.to_dict() for m in self.moves],
        }


def _seconds_scale(name: str, reference: float) -> float:
    """The denominator for relative movement.

    Stage-seconds counters are floats that legitimately live near zero, so
    they get a millisecond floor; count-like counters get a floor of one
    so a 0 -> N miss storm scores as N, not infinity.
    """
    if name.endswith(".seconds"):
        return max(abs(reference), 1e-3)
    return max(abs(reference), 1.0)


def rank_counter_moves(reference: dict, candidate: dict,
                       *, min_relative: float = _MIN_RELATIVE_MOVE,
                       ) -> list[CounterMove]:
    """All materially-moved counters, most-moved first.

    Alongside the raw counters, every ``<stage>.seconds`` counter
    contributes a derived ``<stage>.seconds.share`` feature — its share
    of the cell's total stage seconds — so "build went from 5% to 60% of
    the cell" is visible even when every stage got slower in absolute
    terms.
    """
    names = set(reference) | set(candidate)
    moves: list[CounterMove] = []
    for name in names:
        ref = float(reference.get(name, 0))
        cand = float(candidate.get(name, 0))
        delta = cand - ref
        if delta == 0:
            continue
        relative = delta / _seconds_scale(name, ref)
        if abs(relative) < min_relative:
            continue
        moves.append(CounterMove(name=name, reference=ref, candidate=cand,
                                 delta=delta, relative=relative,
                                 cause=cause_for(name)))

    ref_total = sum(v for k, v in reference.items()
                    if k.endswith(".seconds"))
    cand_total = sum(v for k, v in candidate.items()
                     if k.endswith(".seconds"))
    if ref_total > 0 and cand_total > 0:
        for name in names:
            if not name.endswith(".seconds"):
                continue
            ref_share = float(reference.get(name, 0)) / ref_total
            cand_share = float(candidate.get(name, 0)) / cand_total
            share_delta = cand_share - ref_share
            if abs(share_delta) < _MIN_SHARE_MOVE:
                continue
            share_name = name + ".share"
            moves.append(CounterMove(
                name=share_name, reference=ref_share, candidate=cand_share,
                delta=share_delta, relative=share_delta,
                cause=cause_for(share_name)))

    moves.sort(key=lambda m: m.score, reverse=True)
    return moves


def attribute_regression(reference: dict, candidate: dict, *,
                         reference_seconds: float | None = None,
                         candidate_seconds: float | None = None,
                         top: int = 8) -> Attribution:
    """Rank counter movement and synthesise a one-line probable cause.

    ``reference`` / ``candidate`` are the per-cell counter-delta dicts of
    the two runs being compared (schema v2 ``measurement.counters``).
    Cells without counters (schema v1) produce an honest "cannot
    attribute" rather than a guess.
    """
    if not reference and not candidate:
        return Attribution(
            probable_cause="no counter data on either cell (schema-v1 "
                           "history lines?) — cannot attribute",
            reference_seconds=reference_seconds,
            candidate_seconds=candidate_seconds)
    moves = rank_counter_moves(reference, candidate)
    attribution = Attribution(
        moves=moves[:top],
        reference_seconds=reference_seconds,
        candidate_seconds=candidate_seconds)
    if not moves:
        attribution.probable_cause = (
            "no counter moved materially — the slowdown is outside the "
            "instrumented layers (machine load? memory pressure?)")
        return attribution
    lead = moves[0]
    line = f"{lead.cause} ({lead.describe()})"
    runner_up = next((m for m in moves[1:] if m.cause != lead.cause), None)
    if runner_up is not None:
        line += f"; also {runner_up.describe()}"
    attribution.probable_cause = line
    return attribution


def attribute_series(series: Series, trend: TrendResult | None = None, *,
                     top: int = 8) -> Attribution:
    """Attribute the latest point of a history series against its past.

    The reference cell is the point from *before* the detected
    changepoint whose seconds is closest to the prefix median — the most
    representative healthy measurement — and the candidate is the latest
    point.  With no changepoint the prefix is everything but the last
    point.
    """
    if len(series.points) < 2:
        raise ValidationError(
            f"series {series.key.label()} has {len(series.points)} "
            "point(s); attribution needs at least 2")
    if trend is None:
        trend = detect_trend(series.values())
    split = trend.changepoint
    if split is None or split < 1 or split >= len(series.points):
        split = len(series.points) - 1
    prefix = series.points[:split]
    candidate = series.points[-1]
    prefix_median = quantile([p.seconds for p in prefix], 0.5)
    reference = min(prefix, key=lambda p: abs(p.seconds - prefix_median))
    return attribute_regression(
        reference.counters, candidate.counters,
        reference_seconds=reference.seconds,
        candidate_seconds=candidate.seconds,
        top=top)
