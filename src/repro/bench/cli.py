"""Command-line interface for the benchmarking subsystem.

Usage::

    python -m repro.bench list
    python -m repro.bench list --formats
    python -m repro.bench run --target kernel.coo --scenario deli --budget tiny
    python -m repro.bench run --format auto --format hb-csf --scenario deli \
        --budget tiny
    python -m repro.bench run --target kernel --suite scaling_ladder \
        --repeats 7 --name ladder --dtype float32
    python -m repro.bench run --target kernel.par --suite imbalance_sweep \
        --budget tiny --name par
    python -m repro.bench run --target kernel --suite paper12 --budget tiny \
        --backend threads --workers 4
    python -m repro.bench matrix --suite paper12 --budget tiny
    python -m repro.bench compare BENCH_kernels.json BENCH_candidate.json \
        --threshold 0.15
    python -m repro.bench history report
    python -m repro.bench history trend --target kernel.coo --scenario deli
    python -m repro.bench history attribute --target kernel.coo \
        --scenario deli

``run`` and ``matrix`` write ``BENCH_<name>.json`` (latest run, pretty
JSON) into ``--out-dir`` and append one line to ``BENCH_history.jsonl``
there.  ``compare`` exits with status 1 when any cell regresses beyond the
threshold — wire it straight into CI.  Cells measured in materially
different environments are reported as ``incomparable`` and never fail
the comparison (``--ignore-env`` forces the old behaviour).

``history`` reads across runs instead of between two: ``report`` gives a
trend verdict + sparkline per comparable series, ``trend`` the detailed
changepoint evidence (``--fail-on-regression`` turns it into a CI gate on
sustained regressions), ``attribute`` the ranked counter movement and
probable cause of a series' latest slowdown.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys

from repro.bench.attribution import attribute_series
from repro.bench.compare import DEFAULT_THRESHOLD, compare_runs
from repro.bench.history import (
    DEFAULT_MIN_SHIFT,
    DEFAULT_MIN_SIGMA,
    analyze_history,
    load_history,
    sparkline,
)
from repro.bench.runner import BUDGETS, BenchConfig, run_benchmarks, suite_scenarios
from repro.bench.schema import (
    HISTORY_FILE,
    append_history,
    bench_artifact_path,
    load_run,
    save_run,
)
from repro.bench.targets import (
    DEFAULT_MATRIX_GROUP,
    get_target,
    target_groups,
    target_names,
)
from repro.scenarios.cache import ScenarioCache
from repro.scenarios.spec import get_scenario, parse_spec, scenario_names
from repro.scenarios.suites import suite_names
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]

#: metrics the compare/history commands accept: the timing stats plus the
#: per-cell ``metrics`` fields worth gating on.
_METRIC_CHOICES = ("min", "median", "p95", "mean", "total", "peak_rss_bytes")


def _metric_unit(metric: str) -> tuple[str, float, int]:
    """(unit label, multiplier, display digits) for a metric's values."""
    if metric == "peak_rss_bytes":
        return "MB", 1.0 / (1024 * 1024), 2
    return "ms", 1e3, 4


def _format_table(rows: list[dict]) -> str:
    from repro.experiments.common import format_table

    return format_table(rows)


def _ensure_named_scenarios() -> None:
    """Register the 12 paper-dataset scenarios (lazy in datasets.py)."""
    from repro.tensor.datasets import dataset_scenarios

    dataset_scenarios()


def _make_cache(args) -> ScenarioCache | None:
    if getattr(args, "cache_dir", None):
        return ScenarioCache(args.cache_dir)
    if getattr(args, "cache", False):
        return ScenarioCache()
    return None


def _make_config(args) -> BenchConfig:
    if args.budget is not None:
        config = BenchConfig.from_budget(
            args.budget, rank=args.rank, seed=args.seed, dtype=args.dtype,
            backend=args.backend, num_workers=args.workers,
            cell_timeout_seconds=args.cell_timeout)
        # explicit flags override the budget presets
        overrides = {}
        if args.repeats is not None:
            overrides["repeats"] = args.repeats
        if args.warmup is not None:
            overrides["warmup"] = args.warmup
        if args.scale is not None:
            overrides["scale"] = args.scale
        if args.shard_nnz is not None:
            overrides["shard_nnz"] = args.shard_nnz
        if overrides:
            from dataclasses import replace

            config = replace(config, **overrides)
        return config
    return BenchConfig(
        repeats=args.repeats if args.repeats is not None else 5,
        warmup=args.warmup if args.warmup is not None else 1,
        rank=args.rank,
        scale=args.scale if args.scale is not None else 1.0,
        seed=args.seed,
        dtype=args.dtype,
        backend=args.backend,
        num_workers=args.workers,
        shard_nnz=args.shard_nnz,
        cell_timeout_seconds=args.cell_timeout,
    )


def _format_targets(args) -> list[str]:
    """Translate ``--format`` selections into ``kernel.*`` targets.

    ``--format auto`` selects the autotuned-dispatch target; any other
    spelling is normalised through the registry, so ``--format hbcsf``
    and ``--format hb-csf`` are the same selection.
    """
    targets: list[str] = []
    for name in args.format or ():
        if name.strip().lower() == "auto":
            targets.append("kernel.auto")
            continue
        from repro.formats import canonical_format

        targets.append(f"kernel.{canonical_format(name)}")
    return targets


def _resolve_scenarios(args) -> list[tuple[str, object]]:
    """--scenario entries (named or inline JSON) plus an optional --suite."""
    _ensure_named_scenarios()
    scenarios: list[tuple[str, object]] = []
    for text in args.scenario or ():
        if text.startswith("@"):
            with open(text[1:], encoding="utf-8") as fh:
                text = fh.read()
        if text.lstrip().startswith("{"):
            spec = parse_spec(text)
            scenarios.append((spec.display_name(), spec))
        else:
            scenarios.append((text, get_scenario(text)))
    if args.suite:
        scenarios.extend(suite_scenarios(args.suite))
    return scenarios


def _execute_sweep(args, targets: list[str], default_name: str) -> int:
    config = _make_config(args)
    scenarios = _resolve_scenarios(args)
    name = args.name or default_name
    run = run_benchmarks(
        targets,
        scenarios,
        config,
        name=name,
        cache=_make_cache(args),
        progress=None if args.quiet else lambda line: print(line),
    )
    out_path = args.out or bench_artifact_path(name, args.out_dir)
    save_run(run, out_path)
    print(f"wrote {out_path}  ({len(run.measurements)} measurements)")
    if not args.no_history:
        history = append_history(run, f"{args.out_dir}/{HISTORY_FILE}")
        print(f"appended to {history}")
    return 0


def _list_formats() -> int:
    from repro.formats import iter_formats

    rows = []
    for spec in iter_formats():
        flags = []
        if spec.needs_split_config:
            flags.append("split-config")
        if not spec.per_mode_build:
            flags.append("allmode-build")
        if spec.requires_singleton_fibers:
            flags.append("singleton-fibers")
        if spec.cpu_supported_orders is not None:
            orders = "/".join(str(o) for o in spec.cpu_supported_orders)
            flags.append(f"order-{orders}-only")
        rows.append({
            "format": spec.name,
            "kind": spec.kind,
            "cpu": "yes" if spec.cpu_kernel else "-",
            "gpusim": "yes" if spec.gpusim else "-",
            "aliases": ", ".join(spec.aliases) or "-",
            "flags": ", ".join(flags) or "-",
        })
    print(_format_table(rows))
    print()
    print("All format enumeration flows through repro.formats; "
          "see src/repro/formats/README.md to register a new one.")
    return 0


def _cmd_list(args) -> int:
    if args.formats:
        return _list_formats()
    _ensure_named_scenarios()
    print("targets:")
    for group in target_groups():
        print(f"  [{group}]")
        for name in target_names(group):
            print(f"    {name:<20} {get_target(name).description}")
    print()
    print(f"suites: {', '.join(suite_names())}")
    named = scenario_names()
    if named:
        print(f"named scenarios ({len(named)}): {', '.join(named)}")
    print()
    print("budgets (scale, repeats, warmup):")
    for budget, (scale, repeats, warmup) in BUDGETS.items():
        print(f"  {budget:<8} scale={scale:<5} repeats={repeats} warmup={warmup}")
    return 0


def _cmd_run(args) -> int:
    targets = (args.target or []) + _format_targets(args)
    if not targets:
        targets = [DEFAULT_MATRIX_GROUP]
    return _execute_sweep(args, targets, default_name="run")


def _cmd_matrix(args) -> int:
    targets = (args.target or []) + _format_targets(args)
    if not targets:
        targets = [DEFAULT_MATRIX_GROUP]
    # default artifact name: the shared group prefix (BENCH_kernels.json for
    # the default kernel sweep), else "matrix"
    from repro.bench.targets import expand_targets

    groups = {get_target(t).group for t in expand_targets(targets)}
    default_name = f"{next(iter(groups))}s" if len(groups) == 1 else "matrix"
    return _execute_sweep(args, targets, default_name=default_name)


def _cmd_compare(args) -> int:
    baseline = load_run(args.baseline)
    candidate = load_run(args.candidate)
    report = compare_runs(baseline, candidate, threshold=args.threshold,
                          metric=args.metric,
                          check_env=not args.ignore_env)
    if args.json:
        counts = report.counts()
        print(json.dumps({
            "baseline": report.baseline_name,
            "candidate": report.candidate_name,
            "metric": report.metric,
            "threshold": report.threshold,
            "env_differences": report.env_differences,
            "counts": counts,
            "cells": report.rows(),
        }, indent=2))
    else:
        print(f"baseline : {args.baseline} ({report.baseline_name})")
        print(f"candidate: {args.candidate} ({report.candidate_name})")
        print(f"metric   : {report.metric}   threshold: +/-"
              f"{report.threshold:.0%}")
        comparable = [d for d in report.deltas
                      if d.verdict != "incomparable"]
        if comparable:
            print(_format_table(
                [r for r in report.rows() if r["verdict"] != "incomparable"]))
        counts = report.counts()
        print(", ".join(f"{v}: {counts[v]}" for v in
                        ("regression", "improvement", "neutral", "added",
                         "removed", "incomparable")))
        if report.env_differences:
            print()
            print("environments differ materially — "
                  + "; ".join(report.env_differences))
            print(f"{counts['incomparable']} shared cell(s) reported as "
                  "incomparable, not compared (use --ignore-env to force "
                  "a cross-environment comparison):")
            print(_format_table(
                [r for r in report.rows()
                 if r["verdict"] == "incomparable"]))
    if report.has_regressions:
        worst = max(report.regressions, key=lambda d: d.ratio or 0.0)
        print(f"REGRESSION: {len(report.regressions)} cell(s) slower than "
              f"{1.0 + report.threshold:.2f}x baseline "
              f"(worst: {worst.target} on {worst.scenario}, "
              f"{worst.ratio:.2f}x)", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------- #
# history analytics
# --------------------------------------------------------------------- #
def _history_reports(args):
    """Load + analyze the history file, applying --target/--scenario globs."""
    runs = load_history(args.history, strict=False)
    if not runs:
        raise ReproError(f"no readable runs in {args.history}")
    reports = analyze_history(runs, metric=args.metric,
                              min_shift=args.min_shift,
                              min_sigma=args.min_sigma)
    if args.target:
        reports = [r for r in reports
                   if fnmatch.fnmatch(r.series.key.target, args.target)]
    if args.scenario:
        reports = [r for r in reports
                   if fnmatch.fnmatch(r.series.key.scenario, args.scenario)]
    return reports


def _series_env(report) -> str:
    machine, cpu_count, python = report.series.key.env
    return f"{machine or '?'}/{cpu_count or '?'}cpu/py{python or '?'}"


def _cmd_history_report(args) -> int:
    reports = _history_reports(args)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
        return 0
    if not reports:
        print("no series with >= 2 comparable samples "
              f"in {args.history}")
        return 0
    unit, scale_, digits = _metric_unit(args.metric)
    rows = []
    for r in reports:
        values = r.series.values()
        trend = r.trend
        shift = ("-" if trend.shift_ratio is None
                 else f"{trend.shift_ratio:.2f}x")
        verdict = trend.verdict
        if trend.flagged and trend.sustained:
            verdict += "!"
        rows.append({
            "target": r.series.key.target,
            "scenario": r.series.key.scenario,
            "env": _series_env(r),
            "n": len(r.series),
            f"first {unit}": round(values[0] * scale_, digits),
            f"last {unit}": round(values[-1] * scale_, digits),
            "shift": shift,
            "trend": verdict,
            "history": sparkline(values),
        })
    print(_format_table(rows))
    counts: dict[str, int] = {}
    for r in reports:
        counts[r.trend.verdict] = counts.get(r.trend.verdict, 0) + 1
    print()
    print(f"{len(reports)} series ("
          + ", ".join(f"{v}: {n}" for v, n in sorted(counts.items()))
          + ");  '!' marks a sustained shift (>= 2 points past the "
            "changepoint)")
    return 0


def _cmd_history_trend(args) -> int:
    reports = _history_reports(args)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    elif not reports:
        print(f"no series with >= 2 comparable samples in {args.history}")
    else:
        unit, scale_, _ = _metric_unit(args.metric)
        blocks = []
        for r in reports:
            trend = r.trend
            values = r.series.values()
            lines = [
                f"{r.series.key.label()}  n={len(values)}  "
                f"verdict={trend.verdict} ({trend.method})"
            ]
            lines.append(f"  {unit}: "
                         + " ".join(f"{v * scale_:.3f}" for v in values)
                         + f"   {sparkline(values)}")
            if trend.before_median is not None:
                detail = (f"  median {trend.before_median * scale_:.3f}{unit}"
                          f" -> {trend.after_median * scale_:.3f}{unit}")
                if trend.shift_ratio is not None:
                    detail += f" ({trend.shift_ratio:.2f}x)"
                if trend.changepoint is not None:
                    detail += (f", changepoint at sample {trend.changepoint}"
                               f", sustained={'yes' if trend.sustained else 'no'}")
                if trend.score is not None:
                    detail += (f", {trend.score:.1f} sigma vs "
                               f"{trend.noise_sigma * scale_:.4f}{unit} "
                               "noise band")
                lines.append(detail)
            blocks.append("\n".join(lines))
        print("\n\n".join(blocks))
    regressing = [r for r in reports if r.trend.verdict == "regressing"]
    if args.fail_on_regression:
        gate = [r for r in regressing
                if r.trend.sustained or args.include_unsustained]
        if gate:
            print(f"TREND REGRESSION: {len(gate)} series with a "
                  "sustained upward median shift (worst: "
                  f"{gate[0].series.key.label()})", file=sys.stderr)
            return 1
    return 0


def _cmd_history_attribute(args) -> int:
    reports = _history_reports(args)
    if not reports:
        print(f"no matching series with >= 2 comparable samples in "
              f"{args.history}", file=sys.stderr)
        return 2
    chosen = (reports if (args.target or args.scenario)
              else [r for r in reports if r.trend.verdict == "regressing"])
    if not chosen:
        print("no regressing series to attribute (pass --target/--scenario "
              "to attribute a specific one)")
        return 0
    results = []
    for r in chosen:
        attribution = attribute_series(r.series, r.trend)
        results.append((r, attribution))
    if args.json:
        print(json.dumps([{
            "target": r.series.key.target,
            "scenario": r.series.key.scenario,
            "env": list(r.series.key.env),
            "trend": r.trend.to_dict(),
            "attribution": a.to_dict(),
        } for r, a in results], indent=2))
        return 0
    unit, scale_, _ = _metric_unit(args.metric)
    blocks = []
    for r, a in results:
        lines = [f"{r.series.key.label()}  verdict={r.trend.verdict}"]
        if a.slowdown is not None:
            lines.append(
                f"  latest {a.candidate_seconds * scale_:.3f}{unit} "
                f"vs reference "
                f"{a.reference_seconds * scale_:.3f}{unit} "
                f"({a.slowdown:.2f}x)")
        lines.append(f"  probable cause: {a.probable_cause}")
        if a.moves:
            lines.append("  counter movement (most-moved first):")
            for move in a.moves:
                lines.append(f"    {move.describe():<56} {move.cause}")
        blocks.append("\n".join(lines))
    print("\n\n".join(blocks))
    return 0


_HISTORY_COMMANDS = {
    "report": _cmd_history_report,
    "trend": _cmd_history_trend,
    "attribute": _cmd_history_attribute,
}


def _cmd_history(args) -> int:
    return _HISTORY_COMMANDS[args.history_command](args)


def _add_history_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--history", default=HISTORY_FILE,
                     help=f"trajectory file (default: {HISTORY_FILE})")
    sub.add_argument("--metric", default="median",
                     choices=_METRIC_CHOICES,
                     help="statistic tracked per cell (default median); "
                          "peak_rss_bytes tracks memory instead of time")
    sub.add_argument("--target", default=None,
                     help="only series whose target matches this glob")
    sub.add_argument("--scenario", default=None,
                     help="only series whose scenario matches this glob")
    sub.add_argument("--min-shift", type=float, default=DEFAULT_MIN_SHIFT,
                     help="smallest relative median shift reported "
                          "(default 0.10)")
    sub.add_argument("--min-sigma", type=float, default=DEFAULT_MIN_SIGMA,
                     help="MAD-sigmas a shift must clear to be a "
                          "changepoint (default 3.0)")
    sub.add_argument("--json", action="store_true",
                     help="emit JSON instead of a table")


def _add_sweep_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--target", "-t", action="append", default=None,
                     help="target name, group or glob (repeatable; default: "
                          f"the {DEFAULT_MATRIX_GROUP!r} group)")
    sub.add_argument("--format", "-f", action="append", default=None,
                     help="kernel format to time (repeatable); any registry "
                          "name/alias, or 'auto' for the autotuned dispatch "
                          "target — shorthand for --target kernel.<format>")
    sub.add_argument("--backend", choices=("serial", "threads"), default=None,
                     help="execution backend for targets that accept one "
                          "(kernel.*, cpd.*); default defers to "
                          "REPRO_BACKEND, then serial")
    sub.add_argument("--workers", type=int, default=None,
                     help="worker count for --backend threads; default "
                          "defers to REPRO_NUM_WORKERS, then the CPU count")
    sub.add_argument("--dtype", choices=("float32", "float64"), default=None,
                     help="compute dtype for kernel/build/cpd targets "
                          "(default float64)")
    sub.add_argument("--scenario", "-s", action="append", default=None,
                     help="named scenario, inline JSON spec, or @spec-file "
                          "(repeatable)")
    sub.add_argument("--suite", default=None,
                     help=f"scenario suite to sweep ({', '.join(suite_names())})")
    sub.add_argument("--budget", choices=sorted(BUDGETS), default=None,
                     help="measurement budget preset (scale/repeats/warmup)")
    sub.add_argument("--repeats", type=int, default=None,
                     help="timed repetitions per cell")
    sub.add_argument("--warmup", type=int, default=None,
                     help="untimed warmup calls per cell")
    sub.add_argument("--rank", type=int, default=32,
                     help="factor-matrix rank R (paper default 32)")
    sub.add_argument("--scale", type=float, default=None,
                     help="scenario nonzero-budget multiplier")
    sub.add_argument("--seed", type=int, default=None,
                     help="override every scenario's seed")
    sub.add_argument("--shard-nnz", type=int, default=None,
                     help="nonzeros per shard for out-of-core targets "
                          "(build.ooc.*/kernel.ooc.*; default "
                          "library shard size)")
    sub.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock budget; an expired cell is "
                          "recorded with status=timeout and the sweep "
                          "continues (cooperative: checked at kernel slab "
                          "and ALS iteration boundaries)")
    sub.add_argument("--name", default=None,
                     help="run name (artifact becomes BENCH_<name>.json)")
    sub.add_argument("--out", default=None,
                     help="explicit artifact path (overrides --name/--out-dir)")
    sub.add_argument("--out-dir", default=".",
                     help="directory for BENCH_*.json artifacts (default: cwd)")
    sub.add_argument("--no-history", action="store_true",
                     help=f"do not append the run to {HISTORY_FILE}")
    sub.add_argument("--quiet", "-q", action="store_true",
                     help="suppress per-cell progress lines")
    sub.add_argument("--cache", action="store_true",
                     help="cache materialized tensors in the default cache dir")
    sub.add_argument("--cache-dir", default=None,
                     help="cache materialized tensors in this directory")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Measure, persist and compare performance of the "
                    "library's kernels, builders, simulations and solvers")
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list",
                         help="list benchmark targets, suites and budgets")
    lst.add_argument("--formats", action="store_true",
                     help="list the sparse-format registry instead "
                          "(name, aliases, kernels, capability flags)")

    run = sub.add_parser("run", help="time selected targets on selected "
                                     "scenarios")
    _add_sweep_options(run)

    matrix = sub.add_parser("matrix",
                            help="sweep targets x a whole scenario suite "
                                 "(default: paper12)")
    _add_sweep_options(matrix)

    comp = sub.add_parser("compare",
                          help="diff two BENCH_*.json runs; exit 1 on "
                               "regression")
    comp.add_argument("baseline", help="baseline BENCH_*.json")
    comp.add_argument("candidate", help="candidate BENCH_*.json")
    comp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                      help="relative change flagged as regression/improvement "
                           "(default 0.10)")
    comp.add_argument("--metric", default="median",
                      choices=_METRIC_CHOICES,
                      help="statistic compared per cell (default median); "
                           "peak_rss_bytes gates memory instead of time")
    comp.add_argument("--json", action="store_true",
                      help="emit the report as JSON instead of a table")
    comp.add_argument("--ignore-env", action="store_true",
                      help="compare cells even when the two runs were "
                           "measured in materially different environments "
                           "(cross-machine CI gates with widened thresholds)")

    hist = sub.add_parser("history",
                          help="trend analytics over BENCH_history.jsonl")
    hist_sub = hist.add_subparsers(dest="history_command", required=True)

    hrep = hist_sub.add_parser("report",
                               help="one-line trend verdict + sparkline "
                                    "per comparable series")
    _add_history_options(hrep)

    htrend = hist_sub.add_parser("trend",
                                 help="detailed changepoint evidence per "
                                      "series; optional CI gate")
    _add_history_options(htrend)
    htrend.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any series shows a sustained "
                             "upward median shift")
    htrend.add_argument("--include-unsustained", action="store_true",
                        help="with --fail-on-regression, also fail on a "
                             "single slow latest point (not yet sustained)")

    hattr = hist_sub.add_parser("attribute",
                                help="rank counter movement behind a "
                                     "series' latest slowdown")
    _add_history_options(hattr)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "matrix": _cmd_matrix,
    "compare": _cmd_compare,
    "history": _cmd_history,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "matrix" and not args.suite:
        args.suite = "paper12"
    if args.command in ("run", "matrix") and not (args.scenario or args.suite):
        build_parser().error("run needs --scenario and/or --suite")
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
