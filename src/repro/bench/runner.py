"""Benchmark runner: sweep targets over scenarios with warmup/repeat control.

The runner materialises each scenario once, then times every requested
target against it through :func:`repro.util.timing.repeat` — the library's
single measurement loop — and assembles a :class:`~repro.bench.schema.BenchRun`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.bench.env import (
    capture_environment,
    cell_peak_rss,
    reset_peak_rss,
    utc_now_iso,
)
from repro.bench.schema import (
    BenchRun,
    Measurement,
    stats_from_timer,
    timeout_stats,
)
from repro.bench.targets import expand_targets, get_target
from repro.faults.deadline import Deadline, deadline_scope
from repro.scenarios.cache import ScenarioCache, materialize, materialize_sharded
from repro.scenarios.spec import ScenarioSpec, parse_spec
from repro.scenarios.suites import get_suite
from repro.tensor.shards import DEFAULT_SHARD_NNZ
from repro.telemetry import counters_delta, counters_snapshot
from repro.util.dtypes import resolve_dtype
from repro.util.errors import DeadlineExceeded, ValidationError
from repro.util.timing import repeat

__all__ = ["BenchConfig", "BUDGETS", "run_benchmarks", "suite_scenarios"]

#: named measurement budgets: (scenario scale, repeats, warmup).  ``tiny``
#: keeps a full kernel x paper12 matrix under a minute of wall clock.  Its
#: warmup is 5 because the first few calls on a freshly built
#: representation run up to 3x slow (first-touch page faults on the new
#: arrays), and its repeats 5 so one jittery lap cannot drag the median —
#: with fewer laps, recordings differ by >10% on random cells and show up
#: as phantom regressions in ``repro-bench compare``.
BUDGETS: dict[str, tuple[float, int, int]] = {
    "tiny": (0.04, 5, 5),
    "small": (0.2, 5, 1),
    "medium": (0.5, 7, 2),
    "full": (1.0, 9, 3),
}


@dataclass(frozen=True)
class BenchConfig:
    """Measurement parameters shared by every cell of a run.

    ``dtype`` applies the compute-dtype policy (:mod:`repro.util.dtypes`)
    to every target that supports it (``kernel.*``, ``build.*``,
    ``cpd.*``); ``None`` measures the float64 default.  ``backend`` /
    ``num_workers`` select the execution backend (:mod:`repro.parallel`)
    the same way: targets that declare the knobs receive them, the rest
    (``build.*``, ``sim.*``, the fixed-worker ``kernel.par.*`` cells)
    measure what their name says.
    """

    repeats: int = 5
    warmup: int = 1
    rank: int = 32
    scale: float = 1.0
    seed: int | None = None
    budget: str | None = None
    dtype: str | None = None
    backend: str | None = None
    num_workers: int | None = None
    #: nonzeros per shard for targets materialised as shard manifests
    #: (``materialize="sharded"``); None takes the library default.
    shard_nnz: int | None = None
    #: wall-clock budget per (target, scenario) cell.  Enforced
    #: cooperatively through the ambient deadline (kernel slab boundaries,
    #: ALS iteration edges): an expired cell is recorded with
    #: ``status="timeout"`` and the sweep moves on to the next cell
    #: instead of aborting the matrix.  ``None`` disables the watchdog.
    cell_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValidationError(f"repeats must be >= 1, got {self.repeats}")
        if self.warmup < 0:
            raise ValidationError(f"warmup must be >= 0, got {self.warmup}")
        if self.rank < 1:
            raise ValidationError(f"rank must be >= 1, got {self.rank}")
        if self.scale <= 0:
            raise ValidationError(f"scale must be positive, got {self.scale}")
        if (self.cell_timeout_seconds is not None
                and self.cell_timeout_seconds <= 0):
            raise ValidationError(
                f"cell_timeout_seconds must be positive, got "
                f"{self.cell_timeout_seconds}")
        if self.shard_nnz is not None and self.shard_nnz < 1:
            raise ValidationError(
                f"shard_nnz must be >= 1, got {self.shard_nnz}")
        if self.dtype is not None:
            resolve_dtype(self.dtype)
        if self.backend is not None:
            from repro.parallel.pool import resolve_backend

            object.__setattr__(self, "backend",
                               resolve_backend(self.backend))
        if self.num_workers is not None:
            from repro.parallel.pool import resolve_workers

            object.__setattr__(self, "num_workers",
                               resolve_workers(self.num_workers))

    @classmethod
    def from_budget(cls, budget: str, *, rank: int = 32,
                    seed: int | None = None,
                    dtype: str | None = None,
                    backend: str | None = None,
                    num_workers: int | None = None,
                    cell_timeout_seconds: float | None = None,
                    ) -> "BenchConfig":
        try:
            scale, repeats, warmup = BUDGETS[budget]
        except KeyError:
            raise ValidationError(
                f"unknown budget {budget!r}; choose one of "
                f"{', '.join(BUDGETS)}") from None
        return cls(repeats=repeats, warmup=warmup, rank=rank, scale=scale,
                   seed=seed, budget=budget, dtype=dtype, backend=backend,
                   num_workers=num_workers,
                   cell_timeout_seconds=cell_timeout_seconds)

    def to_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "rank": self.rank,
            "scale": self.scale,
            "seed": self.seed,
            "budget": self.budget,
            "dtype": self.dtype,
            "backend": self.backend,
            "num_workers": self.num_workers,
            "shard_nnz": self.shard_nnz,
            "cell_timeout_seconds": self.cell_timeout_seconds,
        }


def suite_scenarios(name: str) -> list[tuple[str, ScenarioSpec]]:
    """The (name, spec) entries of a scenario suite, unscaled."""
    return get_suite(name).specs()


def _materialize_for(kind: str, spec: ScenarioSpec,
                     cache: ScenarioCache | None, config: BenchConfig,
                     scratch: list) -> object:
    """Materialise ``spec`` the way a target's ``materialize`` kind asks.

    Sharded materialisation without a cache lands in a self-cleaning
    temporary directory (appended to ``scratch``; the caller removes it
    when the run finishes), so ad-hoc out-of-core runs never leave shard
    trees behind.
    """
    if kind == "sharded":
        shard_nnz = config.shard_nnz or DEFAULT_SHARD_NNZ
        if cache is not None:
            return materialize_sharded(spec, cache, shard_nnz=shard_nnz)
        tmp = tempfile.TemporaryDirectory(prefix="repro-ooc-")
        scratch.append(tmp)
        return materialize_sharded(spec, root=os.path.join(tmp.name, "shards"),
                                   shard_nnz=shard_nnz)
    return materialize(spec, cache)


def _setup_target(target, tensor, config: BenchConfig):
    """Run a target's untimed setup, forwarding the dtype / backend knobs
    when the target declares them (``sim.*`` targets, for instance, have no
    compute dtype — the simulator is analytical — and ``build.*`` targets
    have no execution backend).  Uses the registry's shared, memoised
    signature inspection."""
    extras = {}
    wanted = (("dtype", config.dtype), ("backend", config.backend),
              ("num_workers", config.num_workers))
    if any(value is not None for _, value in wanted):
        from repro.formats.registry import optional_call_params

        supported = optional_call_params(target.setup)
        extras = {knob: value for knob, value in wanted
                  if value is not None and knob in supported}
    return target.setup(tensor, config.rank, **extras)


def run_benchmarks(
    targets: Iterable[str],
    scenarios: Sequence[tuple[str, "ScenarioSpec | dict | str"]],
    config: BenchConfig | None = None,
    *,
    name: str = "run",
    cache: ScenarioCache | None = None,
    progress: Callable[[str], None] | None = None,
) -> BenchRun:
    """Time every target against every scenario; return the assembled run.

    Parameters
    ----------
    targets:
        Target names / group names / glob patterns
        (:func:`repro.bench.targets.expand_targets` semantics).
    scenarios:
        ``(display name, spec-like)`` pairs; specs are parsed and scaled by
        ``config.scale`` (respecting each spec's ``min_nnz`` floor).
    config:
        Measurement parameters (defaults to :class:`BenchConfig`'s).
    name:
        Run name — becomes the ``BENCH_<name>.json`` artifact stem.
    cache:
        Optional scenario cache so repeated runs skip regeneration.
    progress:
        Optional callback receiving one human-readable line per cell.
    """
    config = config or BenchConfig()
    resolved = expand_targets(targets)
    if not resolved:
        raise ValidationError("no benchmark targets selected")
    if not scenarios:
        raise ValidationError("no scenarios selected")

    # Resolve effective specs up front and keep (target, scenario) cells
    # unique: an exact duplicate (same name, same content hash) is dropped,
    # a name collision over different content is disambiguated with the
    # hash — compare_runs matches cells by name, so silent shadowing here
    # would hide measurements from every later comparison.
    resolved_scenarios: list[tuple[str, ScenarioSpec]] = []
    seen: dict[str, str] = {}
    for scenario_name, spec_like in scenarios:
        spec = parse_spec(spec_like).with_scale(config.scale)
        if config.seed is not None:
            spec = spec.with_seed(config.seed)
        spec_hash = spec.spec_hash()
        if scenario_name in seen:
            if seen[scenario_name] == spec_hash:
                continue
            scenario_name = f"{scenario_name}@{spec_hash[:8]}"
            if seen.get(scenario_name) == spec_hash:
                continue
        seen[scenario_name] = spec_hash
        resolved_scenarios.append((scenario_name, spec))

    run = BenchRun(
        name=name,
        created_at=utc_now_iso(),
        env=capture_environment(),
        config=config.to_dict(),
    )

    scratch: list[tempfile.TemporaryDirectory] = []
    try:
        for scenario_name, effective in resolved_scenarios:
            # one materialisation per (scenario, kind): in-RAM targets share
            # a CooTensor, out-of-core targets share a shard manifest
            tensors: dict[str, object] = {}
            for target_name in resolved:
                target = get_target(target_name)
                tensor = tensors.get(target.materialize)
                if tensor is None:
                    tensor = tensors[target.materialize] = _materialize_for(
                        target.materialize, effective, cache, config, scratch)
                # counter deltas cover the whole cell — setup (builds, tuner
                # probes) plus warmup plus the timed laps — so a cell's cache
                # hit/miss movement and stage totals are attributable to it
                # without ever resetting the shared registry.  The RSS
                # high-water mark is reset on the same boundary, so
                # peak_rss_bytes bounds this cell alone wherever the kernel
                # allows the reset (env records the scope).
                before = counters_snapshot()
                rss_reset = reset_peak_rss()
                # The per-cell watchdog is an ambient deadline over the
                # whole cell (setup + warmup + laps): instrumented layers
                # poll it at their cooperative boundaries, so an expired
                # cell raises DeadlineExceeded mid-kernel instead of
                # hanging the matrix.  Targets that never reach an
                # instrumented boundary run to completion regardless.
                result = timer = None
                timed_out: DeadlineExceeded | None = None
                try:
                    if config.cell_timeout_seconds is not None:
                        cell_deadline = Deadline(config.cell_timeout_seconds)
                        with deadline_scope(cell_deadline):
                            fn = _setup_target(target, tensor, config)
                            result, timer = repeat(fn, n=config.repeats,
                                                   warmup=config.warmup)
                    else:
                        fn = _setup_target(target, tensor, config)
                        result, timer = repeat(fn, n=config.repeats,
                                               warmup=config.warmup)
                except DeadlineExceeded as exc:
                    timed_out = exc
                counters = counters_delta(before)
                metrics = ({} if timed_out is not None or target.probe is None
                           else dict(target.probe(result)))
                rss, rss_scope = cell_peak_rss(rss_reset)
                if rss is not None:
                    metrics["peak_rss_bytes"] = rss
                run.env.setdefault("peak_rss_scope", rss_scope)
                if timed_out is not None:
                    elapsed = float(timed_out.elapsed_seconds
                                    or config.cell_timeout_seconds)
                    stats = timeout_stats(elapsed, config.warmup)
                    metrics["timeout_seconds"] = config.cell_timeout_seconds
                else:
                    stats = stats_from_timer(timer, config.warmup)
                measurement = Measurement(
                    target=target_name,
                    scenario=scenario_name,
                    spec_hash=effective.spec_hash(),
                    shape=tuple(tensor.shape),
                    nnz=tensor.nnz,
                    rank=config.rank,
                    stats=stats,
                    metrics=metrics,
                    counters=counters,
                    status="timeout" if timed_out is not None else "ok",
                )
                run.measurements.append(measurement)
                if progress is not None:
                    if timed_out is not None:
                        progress(
                            f"{target_name:<18} {scenario_name:<18} "
                            f"TIMEOUT after {elapsed:.3f} s at "
                            f"{timed_out.where or 'unknown'} "
                            f"(budget {config.cell_timeout_seconds} s)"
                        )
                    else:
                        progress(
                            f"{target_name:<18} {scenario_name:<18} "
                            f"median {measurement.seconds('median') * 1e3:9.3f} ms  "
                            f"(min {measurement.seconds('min') * 1e3:.3f}, "
                            f"p95 {measurement.seconds('p95') * 1e3:.3f}, "
                            f"x{config.repeats})"
                        )
    finally:
        for tmp in scratch:
            tmp.cleanup()
    return run
