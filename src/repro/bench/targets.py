"""Benchmark-target registry.

A *target* is any timeable operation of the library: an exact MTTKRP
kernel, a format build, a gpusim-simulated kernel, a full CPD-ALS solve.
Each target declares a ``setup(tensor, rank)`` callable that does all
untimed preparation (format construction, factor generation) and returns a
zero-argument closure — the closure is what the runner times.  ``build.*``
targets invert that: construction *is* the timed operation.

Targets are registered declaratively (the same pattern as
:mod:`repro.scenarios.registry`), so both the ``repro-bench`` CLI and the
pytest benchmark harness (``benchmarks/conftest.py``) iterate one shared
list instead of duplicating timing glue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Iterable

import numpy as np

from repro.tensor.coo import CooTensor
from repro.util.errors import ValidationError
from repro.util.prng import default_rng

__all__ = [
    "BenchTarget",
    "register_target",
    "get_target",
    "target_names",
    "target_groups",
    "expand_targets",
    "DEFAULT_MATRIX_GROUP",
    "PAR_WORKER_COUNTS",
]

#: target group the ``matrix`` subcommand sweeps by default.
DEFAULT_MATRIX_GROUP = "kernel"

#: seed used for benchmark factor matrices (fixed: factors must not vary
#: between the runs a comparison wants to line up).
_FACTOR_SEED = 20190520


@dataclass(frozen=True)
class BenchTarget:
    """One registered timeable operation.

    ``setup(tensor, rank)`` returns the closure the runner times;
    ``probe(result)`` (optional) receives the closure's final return value
    and extracts extra JSON-safe metrics recorded alongside the timings
    (e.g. the simulated GPU seconds for ``sim.*`` targets, where
    wall-clock measures the *simulator*).  ``materialize`` selects how the
    runner materialises each scenario for this target: ``"coo"`` (one
    in-RAM :class:`CooTensor`, the default) or ``"sharded"`` (an on-disk
    :class:`~repro.tensor.shards.ShardedCooTensor` manifest, for the
    out-of-core ``*.ooc.*`` targets whose whole point is never holding the
    tensor in memory).
    """

    name: str
    group: str
    description: str
    setup: Callable[[CooTensor, int], Callable[[], object]]
    probe: Callable[[object], dict] | None = field(default=None)
    materialize: str = "coo"


_TARGETS: dict[str, BenchTarget] = {}


def register_target(name: str, *, group: str, description: str,
                    probe: Callable[[object], dict] | None = None,
                    materialize: str = "coo",
                    overwrite: bool = False):
    """Decorator registering a ``setup`` callable as benchmark target ``name``."""
    if materialize not in ("coo", "sharded"):
        raise ValidationError(
            f"materialize must be 'coo' or 'sharded', got {materialize!r}")

    def decorator(setup: Callable[[CooTensor, int], Callable[[], object]]):
        if name in _TARGETS and not overwrite:
            raise ValidationError(f"bench target {name!r} is already registered")
        _TARGETS[name] = BenchTarget(name=name, group=group,
                                     description=description, setup=setup,
                                     probe=probe, materialize=materialize)
        return setup

    return decorator


def get_target(name: str) -> BenchTarget:
    try:
        return _TARGETS[name]
    except KeyError:
        raise ValidationError(
            f"unknown bench target {name!r}; available: "
            f"{', '.join(sorted(_TARGETS)) or '(none)'}"
        ) from None


def target_names(group: str | None = None) -> list[str]:
    """Sorted target names (deterministic listing), optionally one group."""
    return sorted(n for n, t in _TARGETS.items()
                  if group is None or t.group == group)


def target_groups() -> list[str]:
    return sorted({t.group for t in _TARGETS.values()})


def expand_targets(patterns: Iterable[str]) -> list[str]:
    """Resolve names / group names / glob patterns to sorted target names.

    ``"kernel"`` (a group) and ``"kernel.*"`` (a glob) are equivalent; an
    exact name passes through.  Unknown patterns raise.
    """
    selected: set[str] = set()
    for pattern in patterns:
        pattern = pattern.strip()
        if not pattern:
            continue
        if pattern in _TARGETS:
            selected.add(pattern)
            continue
        if pattern in target_groups():
            selected.update(target_names(pattern))
            continue
        matches = [n for n in _TARGETS if fnmatchcase(n, pattern)]
        if not matches:
            raise ValidationError(
                f"target pattern {pattern!r} matches nothing; targets: "
                f"{', '.join(sorted(_TARGETS))}")
        selected.update(matches)
    return sorted(selected)


def bench_factors(shape: tuple[int, ...], rank: int,
                  dtype=None) -> list[np.ndarray]:
    """Deterministic factor matrices shared by every kernel target.

    ``dtype`` applies the compute-dtype policy (:mod:`repro.util.dtypes`);
    the float32 factors are the float64 draws cast down, so both dtypes
    measure the same problem.
    """
    from repro.util.dtypes import resolve_dtype

    rng = default_rng(_FACTOR_SEED)
    resolved = resolve_dtype(dtype)
    return [rng.standard_normal((s, rank)).astype(resolved, copy=False)
            for s in shape]


# --------------------------------------------------------------------- #
# kernel.* — exact MTTKRP kernels (mode 0, the paper's reporting mode),
# one target per registry entry of the paper's format family.  No format
# names are written out here: the registry is the single enumeration.
# --------------------------------------------------------------------- #
def _csl_eligible_inputs(tensor: CooTensor):
    """Mode-0 CSF tree plus the mask of CSL-*representable* slices.

    Representable means every fiber of the slice is a singleton; that is
    the partitioner's csl group plus the single-nonzero slices (which
    HB-CSF routes to its COO kernel, but which CSL can store just as well).
    Shared by ``kernel.csl`` and ``build.csl`` so both measure the same
    slice subset.
    """
    from repro.core.hybrid import partition_slices
    from repro.tensor.csf import build_csf

    csf = build_csf(tensor, 0)
    partition = partition_slices(csf)
    return csf, partition.coo_mask | partition.csl_mask


def _bench_representation(spec, tensor: CooTensor, dtype=None):
    """Mode-0 representation for benchmarking; formats restricted to
    all-singleton-fiber slices (CSL) get the eligible subset.

    Value arrays are downcast at build time (like the registered
    builders), so the timed laps never pay a per-call dtype conversion."""
    if spec.requires_singleton_fibers:
        from repro.core.csl import build_csl_group
        from repro.util.dtypes import cast_values

        return cast_values(build_csl_group(*_csl_eligible_inputs(tensor)),
                           dtype)
    return spec.build(tensor, 0, None, dtype)


def _register_format_kernel(name: str) -> None:
    from repro.formats import get_format

    spec = get_format(name)
    suffix = (" over the CSL-eligible slices" if spec.requires_singleton_fibers
              else "")
    @register_target(f"kernel.{name}", group="kernel",
                     description=f"{name} MTTKRP{suffix}; build untimed")
    def _kernel(tensor: CooTensor, rank: int, dtype=None, backend=None,
                num_workers=None,
                _name: str = name) -> Callable[[], object]:
        from repro.formats import get_format

        fmt = get_format(_name)
        rep = _bench_representation(fmt, tensor, dtype)
        factors = bench_factors(tensor.shape, rank, dtype)
        return lambda: fmt.mttkrp(rep, factors, 0, dtype=dtype,
                                  backend=backend, num_workers=num_workers)


#: worker counts each ``kernel.par.<format>.wN`` cell is registered for.
PAR_WORKER_COUNTS = (2, 4)


def _par_probe(result: object) -> dict:
    return dict(result)


def _register_par_kernel(name: str, workers: int) -> None:
    @register_target(f"kernel.par.{name}.w{workers}", group="kernel.par",
                     description=f"{name} MTTKRP on the threaded backend "
                                 f"({workers} workers); build + shard plan "
                                 "untimed; the probe records the serial "
                                 "reference seconds so speedup-vs-workers "
                                 "is derivable from one run",
                     probe=_par_probe)
    def _kernel(tensor: CooTensor, rank: int, dtype=None,
                _name: str = name,
                _workers: int = workers) -> Callable[[], object]:
        from repro.formats import get_format
        from repro.util.timing import repeat as time_repeat

        fmt = get_format(_name)
        rep = _bench_representation(fmt, tensor, dtype)
        factors = bench_factors(tensor.shape, rank, dtype)

        def serial() -> object:
            return fmt.mttkrp(rep, factors, 0, dtype=dtype, backend="serial")

        def threaded() -> object:
            return fmt.mttkrp(rep, factors, 0, dtype=dtype,
                              backend="threads", num_workers=_workers)

        # untimed: the serial reference for the probe, and one threaded
        # call to populate the shard-plan memo so the timed laps measure
        # execution, not partitioning
        _, serial_timer = time_repeat(serial, n=3, warmup=2)
        threaded()
        metrics = {"serial_seconds": serial_timer.best, "workers": _workers}

        def run() -> dict:
            threaded()
            return metrics

        return run


def _register_registry_targets() -> None:
    from repro.formats import format_names, get_format

    for fmt_name in format_names(kind="own", cpu=True):
        _register_format_kernel(fmt_name)

    # kernel.par.* — threaded-backend cells, one per sharded format x
    # worker count.  Kept out of the default "kernel" matrix group: each
    # cell times extra serial reference laps, and on single-core runners
    # the numbers answer a different question (overhead, not speedup).
    for fmt_name in format_names(kind="own", cpu=True):
        if not get_format(fmt_name).supports_threads:
            continue
        for workers in PAR_WORKER_COUNTS:
            _register_par_kernel(fmt_name, workers)

    # build.* — format construction (the paper's pre-processing axis).
    for fmt_name in format_names(kind="own"):
        spec = get_format(fmt_name)
        if spec.requires_singleton_fibers:
            _register_csl_build(fmt_name)
            continue
        _register_format_build(fmt_name)

    # sim.* — analytical GPU simulations of the format kernels.
    for fmt_name in format_names(gpusim=True):
        if get_format(fmt_name).sim_in_bench:
            _register_sim(fmt_name)


def _register_coo_variant(suffix: str, method: str) -> None:
    @register_target(f"kernel.coo-{suffix}", group="kernel",
                     description=f"COO MTTKRP forced onto the {method!r} "
                                 "accumulation path")
    def _kernel(tensor: CooTensor, rank: int, dtype=None,
                _method: str = method) -> Callable[[], object]:
        from repro.kernels.coo_mttkrp import coo_mttkrp

        factors = bench_factors(tensor.shape, rank, dtype)
        return lambda: coo_mttkrp(tensor, factors, 0, method=_method,
                                  dtype=dtype)


for _suffix, _method in (("scatter", "add_at"), ("sorted", "sort"),
                         ("bincount", "bincount")):
    _register_coo_variant(_suffix, _method)


@register_target("kernel.dispatch", group="kernel",
                 description="public mttkrp() registry dispatch, hb-csf "
                             "(format construction served by the plan cache)")
def _kernel_dispatch(tensor: CooTensor, rank: int,
                     dtype=None) -> Callable[[], object]:
    from repro.core.mttkrp import mttkrp

    factors = bench_factors(tensor.shape, rank, dtype)
    return lambda: mttkrp(tensor, factors, 0, "hb-csf", dtype=dtype)


def _auto_probe(result: object) -> dict:
    return dict(result)


@register_target("kernel.auto", group="kernel",
                 description="autotuned mttkrp(format='auto') dispatch; the "
                             "probe and the winning format's build run "
                             "untimed, so this measures steady-state tuned "
                             "dispatch",
                 probe=_auto_probe)
def _kernel_auto(tensor: CooTensor, rank: int,
                 dtype=None) -> Callable[[], object]:
    from repro.core.mttkrp import mttkrp
    from repro.tune import decide

    factors = bench_factors(tensor.shape, rank, dtype)
    # Untimed: make the decision (and build the winner's representation)
    # now, so the timed closure exercises the decision-cache hit path that
    # production ALS sweeps see.
    decision = decide(tensor, 0, rank, dtype=dtype)
    elected = {"elected": decision.label}

    def run() -> dict:
        mttkrp(tensor, factors, 0, format="auto", dtype=dtype)
        return elected

    return run


def _plan_reuse_probe(result: object) -> dict:
    return dict(result)


@register_target("kernel.plan_reuse", group="kernel",
                 description="MttkrpPlan (all modes) + one ALLMODE MTTKRP "
                             "sweep through the build-plan cache: the first "
                             "invocation builds, later ones reuse",
                 probe=_plan_reuse_probe)
def _kernel_plan_reuse(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.core.mttkrp import MttkrpPlan
    from repro.formats import plan_cache, plan_cache_stats, tensor_fingerprint

    factors = bench_factors(tensor.shape, rank)
    # Self-contained measurement: evict only this tensor's hb-csf entries
    # so the first lap pays the builds and every later lap demonstrates the
    # amortisation — without wiping unrelated cached representations.
    plan_cache().discard(format="hb-csf",
                         fingerprint=tensor_fingerprint(tensor))

    def run() -> dict:
        before = plan_cache_stats()
        plan = MttkrpPlan(tensor, format="hb-csf")
        for m in range(tensor.order):
            plan.mttkrp(factors, m)
        after = plan_cache_stats()
        return {
            "plan_cache_hits": after["hits"] - before["hits"],
            "plan_cache_misses": after["misses"] - before["misses"],
            "preprocessing_seconds": plan.preprocessing_seconds,
        }

    return run


# --------------------------------------------------------------------- #
# build.* — format construction (the paper's pre-processing axis)
# --------------------------------------------------------------------- #
def _register_format_build(name: str) -> None:
    @register_target(f"build.{name}", group="build",
                     description=f"{name} construction from COO "
                                 "(mode-0 root)")
    def _build(tensor: CooTensor, rank: int, dtype=None,
               _name: str = name) -> Callable[[], object]:
        from repro.formats import get_format

        fmt = get_format(_name)
        return lambda: fmt.build(tensor, 0, None, dtype)


def _register_csl_build(name: str) -> None:
    @register_target(f"build.{name}", group="build",
                     description=f"{name} group construction over the "
                                 "CSL-eligible slices (CSF build untimed)")
    def _build(tensor: CooTensor, rank: int,
               _name: str = name) -> Callable[[], object]:
        from repro.core.csl import build_csl_group

        csf, mask = _csl_eligible_inputs(tensor)
        return lambda: build_csl_group(csf, mask)


# --------------------------------------------------------------------- #
# *.ooc.* — the same operations fed from an on-disk shard manifest
# (materialize="sharded"): the runner hands these targets a
# ShardedCooTensor and the format builders stream it chunk by chunk, so
# the cell's peak RSS is bounded by shards, not by nnz.  The probe's
# metrics record the manifest geometry the memory gate divides by.
# --------------------------------------------------------------------- #
def _ooc_probe(result: object) -> dict:
    return dict(result)


def _ooc_manifest_metrics(tensor) -> dict:
    return {
        "num_shards": tensor.num_shards,
        "largest_shard_bytes": tensor.largest_shard_bytes,
    }


def _register_ooc_build(name: str) -> None:
    @register_target(f"build.ooc.{name}", group="build.ooc",
                     description=f"{name} construction streamed from a shard "
                                 "manifest (mode-0 root); the mode-sorted "
                                 "shard view is built during warmup and "
                                 "cached on disk, so timed laps measure the "
                                 "two-pass streaming build itself",
                     probe=_ooc_probe, materialize="sharded")
    def _build(tensor, rank: int, dtype=None,
               _name: str = name) -> Callable[[], object]:
        from repro.formats import get_format

        fmt = get_format(_name)
        metrics = _ooc_manifest_metrics(tensor)

        def run() -> dict:
            fmt.build(tensor, 0, None, dtype)
            return metrics

        return run


def _register_ooc_kernel(name: str) -> None:
    @register_target(f"kernel.ooc.{name}", group="kernel.ooc",
                     description=f"{name} MTTKRP on a representation built "
                                 "by streaming from a shard manifest (build "
                                 "untimed) — the kernel laps are identical "
                                 f"to kernel.{name}, proving the streamed "
                                 "build feeds the same downstream path",
                     probe=_ooc_probe, materialize="sharded")
    def _kernel(tensor, rank: int, dtype=None, backend=None,
                num_workers=None, _name: str = name) -> Callable[[], object]:
        from repro.formats import get_format

        fmt = get_format(_name)
        rep = fmt.build(tensor, 0, None, dtype)
        factors = bench_factors(tensor.shape, rank, dtype)
        metrics = _ooc_manifest_metrics(tensor)

        def run() -> dict:
            fmt.mttkrp(rep, factors, 0, dtype=dtype, backend=backend,
                       num_workers=num_workers)
            return metrics

        return run


def _register_ooc_targets() -> None:
    from repro.formats import format_names, get_format

    for fmt_name in format_names(kind="own", cpu=True):
        # COO "builds" from shards by concatenating them back into RAM and
        # the CSL group needs an eligible-slice mask — neither exercises
        # the streaming two-pass builders this group exists to measure.
        if fmt_name == "coo" or get_format(fmt_name).requires_singleton_fibers:
            continue
        _register_ooc_build(fmt_name)
        _register_ooc_kernel(fmt_name)


# --------------------------------------------------------------------- #
# sim.* — analytical GPU simulations.  Wall-clock times the simulator
# itself (its cost matters for experiment-driver throughput); the probe
# reads the simulated kernel time/GFLOPS the figures are built from off
# the timed closure's (deterministic) result.
# --------------------------------------------------------------------- #
def _sim_probe(result: object) -> dict:
    return {
        "simulated_seconds": result.time_seconds,
        "simulated_gflops": result.gflops,
    }


def _register_sim(fmt: str) -> None:
    @register_target(f"sim.{fmt}", group="sim",
                     description=f"analytical GPU simulation of the {fmt} "
                                 "MTTKRP kernel (times the simulator)",
                     probe=_sim_probe)
    def _sim(tensor: CooTensor, rank: int,
             _fmt: str = fmt) -> Callable[[], object]:
        from repro.gpusim.api import simulate_mttkrp

        return lambda: simulate_mttkrp(tensor, 0, rank, format=_fmt)


_register_registry_targets()
_register_ooc_targets()


# --------------------------------------------------------------------- #
# cpd.* — end-to-end CPD-ALS iterations
# --------------------------------------------------------------------- #
@register_target("cpd.als", group="cpd",
                 description="two CPD-ALS iterations (HB-CSF plan, with fit)")
def _cpd_als(tensor: CooTensor, rank: int,
             dtype=None) -> Callable[[], object]:
    from repro.cpd.als import cp_als

    # a fresh RNG per lap: every repetition must solve the identically
    # initialized problem or laps (and runs) are not comparable
    return lambda: cp_als(tensor, rank, n_iters=2, tol=0.0,
                          format="hb-csf", rng=default_rng(_FACTOR_SEED),
                          dtype=dtype)
