"""Benchmark-target registry.

A *target* is any timeable operation of the library: an exact MTTKRP
kernel, a format build, a gpusim-simulated kernel, a full CPD-ALS solve.
Each target declares a ``setup(tensor, rank)`` callable that does all
untimed preparation (format construction, factor generation) and returns a
zero-argument closure — the closure is what the runner times.  ``build.*``
targets invert that: construction *is* the timed operation.

Targets are registered declaratively (the same pattern as
:mod:`repro.scenarios.registry`), so both the ``repro-bench`` CLI and the
pytest benchmark harness (``benchmarks/conftest.py``) iterate one shared
list instead of duplicating timing glue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Iterable

import numpy as np

from repro.tensor.coo import CooTensor
from repro.util.errors import ValidationError
from repro.util.prng import default_rng

__all__ = [
    "BenchTarget",
    "register_target",
    "get_target",
    "target_names",
    "target_groups",
    "expand_targets",
    "DEFAULT_MATRIX_GROUP",
]

#: target group the ``matrix`` subcommand sweeps by default.
DEFAULT_MATRIX_GROUP = "kernel"

#: seed used for benchmark factor matrices (fixed: factors must not vary
#: between the runs a comparison wants to line up).
_FACTOR_SEED = 20190520


@dataclass(frozen=True)
class BenchTarget:
    """One registered timeable operation.

    ``setup(tensor, rank)`` returns the closure the runner times;
    ``probe(result)`` (optional) receives the closure's final return value
    and extracts extra JSON-safe metrics recorded alongside the timings
    (e.g. the simulated GPU seconds for ``sim.*`` targets, where
    wall-clock measures the *simulator*).
    """

    name: str
    group: str
    description: str
    setup: Callable[[CooTensor, int], Callable[[], object]]
    probe: Callable[[object], dict] | None = field(default=None)


_TARGETS: dict[str, BenchTarget] = {}


def register_target(name: str, *, group: str, description: str,
                    probe: Callable[[object], dict] | None = None,
                    overwrite: bool = False):
    """Decorator registering a ``setup`` callable as benchmark target ``name``."""

    def decorator(setup: Callable[[CooTensor, int], Callable[[], object]]):
        if name in _TARGETS and not overwrite:
            raise ValidationError(f"bench target {name!r} is already registered")
        _TARGETS[name] = BenchTarget(name=name, group=group,
                                     description=description, setup=setup,
                                     probe=probe)
        return setup

    return decorator


def get_target(name: str) -> BenchTarget:
    try:
        return _TARGETS[name]
    except KeyError:
        raise ValidationError(
            f"unknown bench target {name!r}; available: "
            f"{', '.join(sorted(_TARGETS)) or '(none)'}"
        ) from None


def target_names(group: str | None = None) -> list[str]:
    """Sorted target names (deterministic listing), optionally one group."""
    return sorted(n for n, t in _TARGETS.items()
                  if group is None or t.group == group)


def target_groups() -> list[str]:
    return sorted({t.group for t in _TARGETS.values()})


def expand_targets(patterns: Iterable[str]) -> list[str]:
    """Resolve names / group names / glob patterns to sorted target names.

    ``"kernel"`` (a group) and ``"kernel.*"`` (a glob) are equivalent; an
    exact name passes through.  Unknown patterns raise.
    """
    selected: set[str] = set()
    for pattern in patterns:
        pattern = pattern.strip()
        if not pattern:
            continue
        if pattern in _TARGETS:
            selected.add(pattern)
            continue
        if pattern in target_groups():
            selected.update(target_names(pattern))
            continue
        matches = [n for n in _TARGETS if fnmatchcase(n, pattern)]
        if not matches:
            raise ValidationError(
                f"target pattern {pattern!r} matches nothing; targets: "
                f"{', '.join(sorted(_TARGETS))}")
        selected.update(matches)
    return sorted(selected)


def bench_factors(shape: tuple[int, ...], rank: int) -> list[np.ndarray]:
    """Deterministic factor matrices shared by every kernel target."""
    rng = default_rng(_FACTOR_SEED)
    return [rng.standard_normal((s, rank)) for s in shape]


# --------------------------------------------------------------------- #
# kernel.* — exact MTTKRP kernels (mode 0, the paper's reporting mode)
# --------------------------------------------------------------------- #
@register_target("kernel.coo", group="kernel",
                 description="COO MTTKRP, auto accumulation (Algorithm 2)")
def _kernel_coo(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.kernels.coo_mttkrp import coo_mttkrp

    factors = bench_factors(tensor.shape, rank)
    return lambda: coo_mttkrp(tensor, factors, 0)


@register_target("kernel.coo-scatter", group="kernel",
                 description="COO MTTKRP forced onto the np.add.at scatter path")
def _kernel_coo_scatter(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.kernels.coo_mttkrp import coo_mttkrp

    factors = bench_factors(tensor.shape, rank)
    return lambda: coo_mttkrp(tensor, factors, 0, method="add_at")


@register_target("kernel.coo-sorted", group="kernel",
                 description="COO MTTKRP forced onto the sorted segment-sum path")
def _kernel_coo_sorted(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.kernels.coo_mttkrp import coo_mttkrp

    factors = bench_factors(tensor.shape, rank)
    return lambda: coo_mttkrp(tensor, factors, 0, method="sort")


@register_target("kernel.coo-bincount", group="kernel",
                 description="COO MTTKRP forced onto the bincount-per-column path")
def _kernel_coo_bincount(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.kernels.coo_mttkrp import coo_mttkrp

    factors = bench_factors(tensor.shape, rank)
    return lambda: coo_mttkrp(tensor, factors, 0, method="bincount")


@register_target("kernel.csf", group="kernel",
                 description="CSF MTTKRP (Algorithm 3); build untimed")
def _kernel_csf(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.kernels.csf_mttkrp import csf_mttkrp
    from repro.tensor.csf import build_csf

    csf = build_csf(tensor, 0)
    factors = bench_factors(tensor.shape, rank)
    return lambda: csf_mttkrp(csf, factors)


@register_target("kernel.b-csf", group="kernel",
                 description="B-CSF MTTKRP (balanced fibers); build untimed")
def _kernel_bcsf(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.core.bcsf import build_bcsf

    bcsf = build_bcsf(tensor, 0)
    factors = bench_factors(tensor.shape, rank)
    return lambda: bcsf.mttkrp(factors)


@register_target("kernel.hb-csf", group="kernel",
                 description="HB-CSF MTTKRP (COO+CSL+B-CSF groups); build untimed")
def _kernel_hbcsf(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.core.hybrid import build_hbcsf

    hb = build_hbcsf(tensor, 0)
    factors = bench_factors(tensor.shape, rank)
    return lambda: hb.mttkrp(factors)


@register_target("kernel.dispatch", group="kernel",
                 description="public mttkrp() dispatch API, hb-csf "
                             "(includes per-call format construction)")
def _kernel_dispatch(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.core.mttkrp import mttkrp

    factors = bench_factors(tensor.shape, rank)
    return lambda: mttkrp(tensor, factors, 0, "hb-csf")


# --------------------------------------------------------------------- #
# build.* — format construction (the paper's pre-processing axis)
# --------------------------------------------------------------------- #
@register_target("build.csf", group="build",
                 description="CSF construction from COO (mode-0 root)")
def _build_csf(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.tensor.csf import build_csf

    return lambda: build_csf(tensor, 0)


@register_target("build.b-csf", group="build",
                 description="B-CSF construction (fiber/slice splitting)")
def _build_bcsf(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.core.bcsf import build_bcsf

    return lambda: build_bcsf(tensor, 0)


@register_target("build.hb-csf", group="build",
                 description="HB-CSF construction (partition + three groups)")
def _build_hbcsf(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.core.hybrid import build_hbcsf

    return lambda: build_hbcsf(tensor, 0)


# --------------------------------------------------------------------- #
# sim.* — analytical GPU simulations.  Wall-clock times the simulator
# itself (its cost matters for experiment-driver throughput); the probe
# reads the simulated kernel time/GFLOPS the figures are built from off
# the timed closure's (deterministic) result.
# --------------------------------------------------------------------- #
def _sim_probe(result: object) -> dict:
    return {
        "simulated_seconds": result.time_seconds,
        "simulated_gflops": result.gflops,
    }


def _register_sim(fmt: str) -> None:
    @register_target(f"sim.{fmt}", group="sim",
                     description=f"analytical GPU simulation of the {fmt} "
                                 "MTTKRP kernel (times the simulator)",
                     probe=_sim_probe)
    def _sim(tensor: CooTensor, rank: int,
             _fmt: str = fmt) -> Callable[[], object]:
        from repro.gpusim.api import simulate_mttkrp

        return lambda: simulate_mttkrp(tensor, 0, rank, format=_fmt)


for _fmt in ("coo", "csf", "b-csf", "hb-csf", "f-coo"):
    _register_sim(_fmt)


# --------------------------------------------------------------------- #
# cpd.* — end-to-end CPD-ALS iterations
# --------------------------------------------------------------------- #
@register_target("cpd.als", group="cpd",
                 description="two CPD-ALS iterations (HB-CSF plan, with fit)")
def _cpd_als(tensor: CooTensor, rank: int) -> Callable[[], object]:
    from repro.cpd.als import cp_als

    # a fresh RNG per lap: every repetition must solve the identically
    # initialized problem or laps (and runs) are not comparable
    return lambda: cp_als(tensor, rank, n_iters=2, tol=0.0,
                          format="hb-csf", rng=default_rng(_FACTOR_SEED))
