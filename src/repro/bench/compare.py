"""Regression comparison between two benchmark runs.

:func:`compare_runs` lines up the (target, scenario) cells of a *baseline*
and a *candidate* run and classifies each shared cell by the ratio of a
chosen robust statistic (median by default):

* ``regression``  — candidate slower by more than the threshold,
* ``improvement`` — candidate faster by more than the threshold,
* ``neutral``     — within the threshold either way,

plus ``added`` / ``removed`` for cells present in only one run, and
``incomparable`` for shared cells measured in materially different
environments (machine architecture, CPU count, or Python major.minor —
see :func:`repro.bench.env.env_fingerprint`): a cross-machine ratio is
not a verdict, so those cells are reported separately and never fail the
comparison.  ``check_env=False`` restores the old behaviour for gates
that knowingly compare across machines with a widened threshold.

The CLI exits non-zero when any regression is flagged, so CI and perf PRs
get a mechanical before/after verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.env import env_incompatibilities
from repro.bench.schema import BenchRun
from repro.util.errors import ValidationError

__all__ = ["Delta", "CompareReport", "compare_runs", "DEFAULT_THRESHOLD"]

#: relative slowdown/speedup beyond which a cell is flagged (10%).
DEFAULT_THRESHOLD = 0.10

_VERDICTS = ("regression", "improvement", "neutral", "added", "removed",
             "incomparable")


@dataclass(frozen=True)
class Delta:
    """Comparison outcome for one (target, scenario) cell."""

    target: str
    scenario: str
    verdict: str
    baseline_seconds: float | None = None
    candidate_seconds: float | None = None

    @property
    def ratio(self) -> float | None:
        """candidate / baseline (None unless both cells were measured)."""
        if self.baseline_seconds is None or self.candidate_seconds is None:
            return None
        if self.baseline_seconds == 0.0:
            return None
        return self.candidate_seconds / self.baseline_seconds

    @property
    def speedup(self) -> float | None:
        """baseline / candidate — > 1 means the candidate got faster."""
        if self.candidate_seconds in (None, 0.0) or self.baseline_seconds is None:
            return None
        return self.baseline_seconds / self.candidate_seconds


@dataclass
class CompareReport:
    """All cell deltas of one baseline/candidate comparison."""

    baseline_name: str
    candidate_name: str
    metric: str
    threshold: float
    deltas: list[Delta] = field(default_factory=list)
    #: material environment differences between the two runs (empty when
    #: comparable or when env checking was disabled).
    env_differences: list[str] = field(default_factory=list)

    def by_verdict(self, verdict: str) -> list[Delta]:
        if verdict not in _VERDICTS:
            raise ValidationError(
                f"unknown verdict {verdict!r}; choose one of "
                f"{', '.join(_VERDICTS)}")
        return [d for d in self.deltas if d.verdict == verdict]

    @property
    def regressions(self) -> list[Delta]:
        return self.by_verdict("regression")

    @property
    def improvements(self) -> list[Delta]:
        return self.by_verdict("improvement")

    @property
    def incomparable(self) -> list[Delta]:
        return self.by_verdict("incomparable")

    @property
    def has_regressions(self) -> bool:
        return any(d.verdict == "regression" for d in self.deltas)

    def counts(self) -> dict[str, int]:
        out = {v: 0 for v in _VERDICTS}
        for d in self.deltas:
            out[d.verdict] += 1
        return out

    def rows(self) -> list[dict]:
        """Table rows for :func:`repro.experiments.common.format_table`."""
        if self.metric == "peak_rss_bytes":
            unit, scale_, digits = "MB", 1.0 / (1024 * 1024), 2
        else:
            unit, scale_, digits = "ms", 1e3, 4
        rows = []
        for d in self.deltas:
            rows.append({
                "target": d.target,
                "scenario": d.scenario,
                f"base {unit}": "-" if d.baseline_seconds is None
                                else round(d.baseline_seconds * scale_, digits),
                f"cand {unit}": "-" if d.candidate_seconds is None
                                else round(d.candidate_seconds * scale_, digits),
                "ratio": "-" if d.ratio is None else round(d.ratio, 3),
                "verdict": d.verdict,
            })
        return rows


def _check_metric(metric: str, *runs: BenchRun) -> None:
    """Reject a metric that is neither a timing stat nor recorded anywhere.

    Per-cell ``metrics`` keys are open-ended (``peak_rss_bytes``,
    ``serial_seconds``, ...), so a name is valid when any measurement of
    any run carries it; a name absent everywhere is a typo, not a metric
    that merely predates some runs.
    """
    from repro.bench.schema import _STAT_KEYS

    if metric in _STAT_KEYS:
        return
    for run in runs:
        if any(metric in m.metrics for m in run.measurements):
            return
    raise ValidationError(
        f"unknown metric {metric!r}; choose a timing stat "
        f"({', '.join(_STAT_KEYS)}) or a metrics field recorded in the "
        "runs (e.g. peak_rss_bytes)")


def compare_runs(
    baseline: BenchRun,
    candidate: BenchRun,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    metric: str = "median",
    check_env: bool = True,
) -> CompareReport:
    """Classify every (target, scenario) cell of ``candidate`` vs ``baseline``.

    With ``check_env`` (the default), a material environment difference
    between the two runs — machine architecture, CPU count, or Python
    major.minor — classifies every shared cell as ``incomparable``
    instead of letting cross-machine ratios masquerade as regressions or
    improvements; the differences are listed in
    :attr:`CompareReport.env_differences`.  ``check_env=False`` compares
    regardless (the CI cross-machine gate with its widened threshold).
    """
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    _check_metric(metric, baseline, candidate)

    env_diffs = (env_incompatibilities(baseline.env, candidate.env)
                 if check_env else [])
    report = CompareReport(
        baseline_name=baseline.name,
        candidate_name=candidate.name,
        metric=metric,
        threshold=threshold,
        env_differences=env_diffs,
    )
    base_keys = set(baseline.keys())
    cand_keys = set(candidate.keys())

    for target, scenario in sorted(base_keys | cand_keys):
        base = baseline.measurement(target, scenario)
        cand = candidate.measurement(target, scenario)
        if base is None:
            report.deltas.append(Delta(
                target=target, scenario=scenario, verdict="added",
                candidate_seconds=cand.value(metric)))
            continue
        if cand is None:
            report.deltas.append(Delta(
                target=target, scenario=scenario, verdict="removed",
                baseline_seconds=base.value(metric)))
            continue
        base_s = base.value(metric)
        cand_s = cand.value(metric)
        if not (base.ok and cand.ok):
            # a timed-out cell carries placeholder stats (the elapsed wall
            # clock at expiry, a lower bound) — never a ratio verdict.
            verdict = "incomparable"
            base_s = base_s if base.ok else None
            cand_s = cand_s if cand.ok else None
        elif base_s is None or cand_s is None:
            # one side predates this metric (e.g. peak_rss_bytes on an old
            # run): there is no ratio to judge, so never gate on it.
            verdict = "incomparable"
        elif env_diffs:
            verdict = "incomparable"
        elif base_s > 0 and cand_s > base_s * (1.0 + threshold):
            verdict = "regression"
        elif base_s > 0 and cand_s < base_s * (1.0 - threshold):
            verdict = "improvement"
        else:
            verdict = "neutral"
        report.deltas.append(Delta(
            target=target, scenario=scenario, verdict=verdict,
            baseline_seconds=base_s, candidate_seconds=cand_s))
    return report
