"""Deterministic pseudo-random number helpers.

All synthetic data in the package is generated through these helpers so that
experiments, tests and benchmarks are reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import numpy as np

#: Seed used when callers do not provide one.  Chosen arbitrarily but kept
#: fixed so the default datasets are stable across releases.
DEFAULT_SEED = 0x5EED_2019


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` uses :data:`DEFAULT_SEED`; an integer seeds a fresh
        generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators from ``rng``.

    Used when a generator must be shared across logically independent
    sub-tasks (e.g. one per tensor mode) without coupling their streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
