"""The compute-dtype policy shared by kernels, builders, ALS and bench.

All four CPU MTTKRP kernels are bandwidth-bound: their cost is dominated by
streaming the ``(nnz, R)`` accumulator and the gathered factor rows through
memory, not by the multiplies.  Computing in ``float32`` therefore roughly
halves the wall-clock time at the price of ~1e-6 relative accuracy — a
trade-off the caller should make, not the kernel.  This module defines the
single knob: every public entry point (``mttkrp()``, ``MttkrpPlan``,
``cp_als``, the format builders, the bench targets) accepts a ``dtype``
that is resolved here.

``None`` resolves to the package default (float64, the paper's reference
precision), so existing callers are bit-for-bit unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["COMPUTE_DTYPES", "DEFAULT_COMPUTE_DTYPE", "resolve_dtype",
           "dtype_token"]

#: accepted compute dtypes, by canonical name.
COMPUTE_DTYPES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

#: the package default: the paper's reference precision.
DEFAULT_COMPUTE_DTYPE = COMPUTE_DTYPES["float64"]


def resolve_dtype(dtype) -> np.dtype:
    """Resolve a user-facing dtype spelling to a concrete :class:`np.dtype`.

    Accepts ``None`` (→ float64), the strings ``"float32"`` / ``"float64"``,
    or anything :class:`np.dtype` accepts that resolves to one of the two;
    everything else raises :class:`ValidationError`.
    """
    if dtype is None:
        return DEFAULT_COMPUTE_DTYPE
    if isinstance(dtype, str):
        key = dtype.strip().lower()
        if key in COMPUTE_DTYPES:
            return COMPUTE_DTYPES[key]
        raise ValidationError(
            f"unknown compute dtype {dtype!r}; choose one of "
            f"{', '.join(COMPUTE_DTYPES)}")
    resolved = np.dtype(dtype)
    if resolved.name not in COMPUTE_DTYPES:
        raise ValidationError(
            f"compute dtype must be float32 or float64, got {resolved.name}")
    return resolved


def dtype_token(dtype) -> str:
    """Stable cache-key token for a (possibly ``None``) compute dtype."""
    return resolve_dtype(dtype).name


def cast_values(rep, dtype):
    """Return ``rep`` with its ``values`` array stored in ``dtype``.

    The single casting rule for every representation that owns a value
    array (CSF trees, CSL groups): a frozen-dataclass copy with the values
    downcast, or ``rep`` itself when the dtype already matches (a float64
    request on a float64 build is free).  Pre-casting at build time —
    instead of per kernel call — is what makes the float32 policy actually
    halve the streamed value bytes.
    """
    import dataclasses

    dtype = resolve_dtype(dtype)
    if rep.values.dtype == dtype:
        return rep
    return dataclasses.replace(rep, values=rep.values.astype(dtype))
