"""Small shared utilities: errors, deterministic PRNG helpers, timers."""

from repro.util.errors import (
    ReproError,
    TensorFormatError,
    ValidationError,
    DimensionError,
)
from repro.util.prng import default_rng, spawn_rng
from repro.util.timing import Timer, repeat, timed

__all__ = [
    "ReproError",
    "TensorFormatError",
    "ValidationError",
    "DimensionError",
    "default_rng",
    "spawn_rng",
    "Timer",
    "repeat",
    "timed",
]
