"""Crash-safe file primitives: atomic writes, digests, quarantine.

Every mutable on-disk artifact of the library (shard files, shard
manifests, scenario npz entries, CP-ALS checkpoints, bench artifacts)
commits through the same protocol:

1. write the full payload to a hidden temp file **in the target
   directory** (``.<name>.<pid>.tmp[...]`` — same filesystem, so the
   rename is atomic);
2. flush + fsync the temp file;
3. ``os.replace`` onto the final name — the commit point;
4. best-effort fsync of the directory so the rename itself is durable.

A crash before step 3 leaves only a temp file that
:func:`repro.faults.scan_for_debris` flags and :func:`cleanup_stale_tmp`
removes; a crash after leaves the complete new file.  Torn *committed*
files can then only come from storage corruption, which readers handle by
verifying (length or digest) on open and routing damaged files through
:func:`quarantine` — moved aside for forensics, counted by the
``cache.quarantined`` telemetry counter, and rebuilt by the caller.

The writers accept a ``fault=`` fault-point name; the hook runs on the
temp file after the payload is written and before the commit, so an
injected ``raise`` models a crash-before-commit (no torn state) while an
injected ``truncate``/``corrupt`` models a committed-then-rotted file —
exactly the two failure classes the recovery paths must survive.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.faults.hooks import fault_point
from repro.telemetry.counters import counter_add

__all__ = [
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_save_npy",
    "atomic_savez",
    "sha256_file",
    "quarantine",
    "cleanup_stale_tmp",
]


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        _fsync_path(path)
    except OSError:  # pragma: no cover - not all filesystems allow it
        pass


def _tmp_for(path: Path, *, suffix: str = "") -> Path:
    return path.parent / f".{path.name}.{os.getpid()}.tmp{suffix}"


@contextmanager
def atomic_writer(path: str | os.PathLike, *, fault: str | None = None,
                  suffix: str = ""):
    """Yield a temp path; commit it onto ``path`` when the block succeeds.

    On any exception the temp file is removed — the target is either the
    old content or the complete new content, never a torn mix.  ``fault``
    names a fault point consulted between payload write and commit (see
    the module docstring for the semantics of each fired kind).
    ``suffix`` keeps a required extension on the temp name (``np.savez``
    appends ``.npz`` to names without it).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_for(path, suffix=suffix)
    try:
        yield tmp
        if fault is not None:
            fault_point(fault, path=tmp)
        if tmp.exists():
            _fsync_path(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: str | os.PathLike, data: bytes, *,
                       fault: str | None = None) -> Path:
    path = Path(path)
    with atomic_writer(path, fault=fault) as tmp:
        with open(tmp, "wb") as fh:
            fh.write(data)
    return path


def atomic_write_text(path: str | os.PathLike, text: str, *,
                      fault: str | None = None) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"), fault=fault)


def atomic_write_json(path: str | os.PathLike, obj, *, indent: int | None = 2,
                      sort_keys: bool = True,
                      fault: str | None = None) -> Path:
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n",
        fault=fault)


def atomic_save_npy(path: str | os.PathLike, array: np.ndarray, *,
                    fault: str | None = None) -> Path:
    path = Path(path)
    with atomic_writer(path, fault=fault) as tmp:
        with open(tmp, "wb") as fh:
            np.save(fh, array)
    return path


def atomic_savez(path: str | os.PathLike, *, fault: str | None = None,
                 compressed: bool = True, **arrays) -> Path:
    path = Path(path)
    with atomic_writer(path, fault=fault, suffix=".npz") as tmp:
        save = np.savez_compressed if compressed else np.savez
        save(tmp, **arrays)
    return path


def sha256_file(path: str | os.PathLike, *, block: int = 1 << 20) -> str:
    """Streaming sha256 of a file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(block)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def quarantine(path: str | os.PathLike, *, reason: str = "") -> Path | None:
    """Move a damaged file into ``<dir>/.quarantine/`` for forensics.

    Never raises: a file that cannot be moved is unlinked, one that is
    already gone returns ``None``.  Each quarantine bumps the
    ``cache.quarantined`` telemetry counter and drops a ``<name>.reason``
    sidecar naming why, so a corruption storm is visible both in bench
    counter deltas and on disk.
    """
    path = Path(path)
    if not path.exists():
        return None
    qdir = path.parent / ".quarantine"
    try:
        qdir.mkdir(exist_ok=True)
        for n in itertools.count():
            target = qdir / (path.name if n == 0 else f"{path.name}.{n}")
            if not target.exists():
                break
        os.replace(path, target)
    except OSError:
        path.unlink(missing_ok=True)
        target = None
    counter_add("cache.quarantined")
    if target is not None and reason:
        try:
            with open(qdir / f"{target.name}.reason", "w",
                      encoding="utf-8") as fh:
                fh.write(reason + "\n")
        except OSError:  # pragma: no cover - forensics only
            pass
    return target


def cleanup_stale_tmp(root: str | os.PathLike) -> list[Path]:
    """Remove uncommitted temp files (``.*.tmp*``) under ``root``.

    Only safe when no writer is concurrently committing into ``root`` —
    maintenance entry points (cache ``validate()``, chaos scans) call it,
    routine reads and writes do not.  Returns the removed paths.
    """
    root = Path(root)
    removed: list[Path] = []
    if not root.exists():
        return removed
    for path in sorted(root.rglob(".*")):
        if path.is_file() and ".tmp" in path.name \
                and ".quarantine" not in path.parts:
            path.unlink(missing_ok=True)
            removed.append(path)
    return removed
