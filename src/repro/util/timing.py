"""Wall-clock timing helpers used by the pre-processing experiments and
the :mod:`repro.bench` measurement subsystem."""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from repro.util.errors import ValidationError

T = TypeVar("T")


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = math.floor(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def quantile(values, q: float) -> float:
    """Linear-interpolation quantile of an arbitrary non-empty sample.

    The one quantile definition shared by :class:`Timer`, the telemetry
    span summaries and the bench-history trend analysis, so a p95 means
    the same thing everywhere it is printed.
    """
    if not 0.0 <= q <= 1.0:
        raise ValidationError(f"quantile q must be in [0, 1], got {q}")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValidationError("cannot take a quantile of an empty sample")
    return _quantile(data, q)


def median_abs_deviation(values, center: float | None = None) -> float:
    """Median absolute deviation of a non-empty sample.

    The robust noise estimate behind the bench-history changepoint
    detector: unlike the standard deviation, one wild outlier lap cannot
    inflate it and mask a real median shift.  ``center`` defaults to the
    sample median.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValidationError("cannot take the MAD of an empty sample")
    if center is None:
        center = quantile(data, 0.5)
    return quantile([abs(v - center) for v in data], 0.5)


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    ``Timer`` is used where the paper reports *measured* pre-processing time
    (format construction happens on the host in both the paper and this
    reproduction, so wall-clock is the honest metric there).  The lap-based
    statistics (:attr:`best`, :attr:`median`, :attr:`p95`) are what
    :mod:`repro.bench` records for every measurement.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self.laps.append(lap)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()

    # ------------------------------------------------------------------ #
    # lap statistics
    # ------------------------------------------------------------------ #
    @property
    def best(self) -> float:
        """Fastest recorded lap (0.0 when no laps were recorded)."""
        return min(self.laps) if self.laps else 0.0

    @property
    def median(self) -> float:
        """Median lap time (0.0 when no laps were recorded)."""
        if not self.laps:
            return 0.0
        return _quantile(sorted(self.laps), 0.5)

    @property
    def p95(self) -> float:
        """95th-percentile lap time (0.0 when no laps were recorded)."""
        if not self.laps:
            return 0.0
        return _quantile(sorted(self.laps), 0.95)

    def stats(self) -> dict:
        """Summary statistics of the recorded laps, in one dict.

        Keys: ``count``, ``best``, ``median``, ``p95``, ``max``, ``mean``,
        ``stddev``, ``total`` and the raw ``laps`` list.  This is the
        canonical summary :mod:`repro.bench` serialises per measurement
        cell — consumers read one dict instead of assembling the statistic
        properties piecemeal.

        Raises
        ------
        ValidationError
            When no laps have been recorded: every statistic would be a
            meaningless 0.0, which summary consumers must not mistake for
            an instantaneous measurement.
        """
        laps = list(self.laps)
        n = len(laps)
        if n == 0:
            raise ValidationError(
                "cannot summarise a timer with no laps; record at least "
                "one lap (Timer.measure) before calling stats()")
        total = sum(laps)
        mean = total / n
        var = sum((lap - mean) ** 2 for lap in laps) / n
        return {
            "count": n,
            "best": min(laps),
            "median": self.median,
            "p95": self.p95,
            "max": max(laps),
            "mean": mean,
            "stddev": var ** 0.5,
            "total": total,
            "laps": laps,
        }


def repeat(fn: Callable[[], T], n: int = 5, warmup: int = 1) -> tuple[T, Timer]:
    """Call ``fn()`` ``warmup + n`` times, timing the last ``n``.

    Returns ``(last result, Timer)`` where the timer holds one lap per
    measured call — the shared measurement loop behind every
    :mod:`repro.bench` target.
    """
    if n < 1:
        raise ValidationError(f"repeat needs n >= 1, got {n}")
    if warmup < 0:
        raise ValidationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    timer = Timer()
    result: T = None  # type: ignore[assignment]
    for _ in range(n):
        with timer.measure():
            result = fn()
    return result, timer


def timed(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
