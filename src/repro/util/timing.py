"""Wall-clock timing helpers used by the pre-processing experiments."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    ``Timer`` is used where the paper reports *measured* pre-processing time
    (format construction happens on the host in both the paper and this
    reproduction, so wall-clock is the honest metric there).
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self.laps.append(lap)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()


def timed(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
