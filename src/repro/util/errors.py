"""Exception hierarchy used across the package.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-provided data fails validation (bad indices, NaNs,
    inconsistent array lengths, ...)."""


class DimensionError(ReproError, ValueError):
    """Raised when shapes / orders / modes are inconsistent with the data."""


class TensorFormatError(ReproError, ValueError):
    """Raised when a sparse-format structure is internally inconsistent
    (e.g. non-monotone pointer arrays) or an operation is not supported for
    the given format."""
