"""Exception hierarchy used across the package.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-provided data fails validation (bad indices, NaNs,
    inconsistent array lengths, ...)."""


class DimensionError(ReproError, ValueError):
    """Raised when shapes / orders / modes are inconsistent with the data."""


class TensorFormatError(ReproError, ValueError):
    """Raised when a sparse-format structure is internally inconsistent
    (e.g. non-monotone pointer arrays) or an operation is not supported for
    the given format."""


class ShardIntegrityError(ValidationError):
    """A shard file on disk does not match its manifest entry (wrong byte
    length, unreadable header, digest mismatch).  Subclasses
    :class:`ValidationError` so recovery paths that treat a damaged shard
    directory as a rebuildable cache miss keep working, while callers that
    need to distinguish physical corruption can catch this type and read
    :attr:`path`."""

    def __init__(self, message: str, *, path=None) -> None:
        super().__init__(message)
        #: the offending file, when one can be named.
        self.path = path


class CheckpointError(ValidationError):
    """A CP-ALS checkpoint file is unreadable, fails its digest, or does
    not match the solve it is being resumed into."""


class FaultInjected(ReproError, RuntimeError):
    """Raised by a ``raise``-kind injected fault (:mod:`repro.faults`).

    Deliberately *not* a :class:`ValidationError`: recovery paths that
    swallow damaged-state errors must not silently swallow an injected
    crash — a crash is supposed to propagate like a real one.
    """

    def __init__(self, point: str, *, hit: int = 0) -> None:
        super().__init__(f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class DeadlineExceeded(ReproError, TimeoutError):
    """A cooperative deadline ran out (:class:`repro.faults.Deadline`).

    ``partial`` carries whatever the interrupted operation completed before
    the budget expired (e.g. a :class:`repro.cpd.als.CpdResult` of the
    committed iterations); ``None`` when nothing useful was finished.
    """

    def __init__(self, message: str, *, where: str = "",
                 budget_seconds: float = 0.0,
                 elapsed_seconds: float = 0.0, partial=None) -> None:
        super().__init__(message)
        self.where = where
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds
        self.partial = partial
