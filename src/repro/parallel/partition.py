"""Partitioner: cut a built representation into balanced worker shards.

The partition contract (what makes ``backend="threads"`` bit-identical to
serial) is that shards are cut **only at output-row boundaries**:

* **COO** — the representation is mode-major sorted, so each output row is
  one contiguous run of nonzeros; chunks are groups of whole runs.
* **CSF / B-CSF** — shards are contiguous ranges of level-0 slices (whole
  sub-trees); the level-0 fids are unique, so every output row belongs to
  exactly one shard.
* **CSL** — contiguous ranges of slices; ``slice_inds`` are unique.
* **HB-CSF** — its three groups partition the slices exactly (Algorithm 5),
  so the union of the groups' shards still touches each output row from
  exactly one shard.

Because every output row is computed entirely inside one shard, workers
write **disjoint rows of the shared output** — no private slabs, no
reduction pass — and each row's value is the same left-to-right float
accumulation the serial kernel performs.  Splitting a heavy slice across
workers (as the GPU slc-split does) would reassociate that sum and break
bit-identity, so it is deliberately not done; a dominant slice therefore
bounds the threaded speedup exactly as it bounds the simulated one.

Shards are sized by nnz cost estimates: rows/slices are folded into
``num_workers x OVERSUBSCRIPTION`` contiguous near-equal-cost chunks
(prefix sums + ``searchsorted``), and the chunks are assigned to workers by
the shared chunk-folded LPT (:mod:`repro.parallel.lpt` — the same
scheduling math as ``gpusim.schedule_blocks``).  The makespan stays within
``sum/P + max(chunk)`` of perfect balance.

:func:`shard_plan_for` memoises plans per representation object and stores
them in the content-addressed plan cache (keyed off the representation's
own build key plus the worker count), so sharding — like format building —
is paid once per tensor x mode x config x workers and amortised across ALS
iterations and bench laps.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass

import numpy as np

from repro.kernels.coo_mttkrp import SORT_MIN_NNZ
from repro.parallel.lpt import lpt_assign
from repro.tensor.coo import CooTensor
from repro.tensor.csf import CsfTensor

__all__ = [
    "OVERSUBSCRIPTION",
    "Shard",
    "ShardPlan",
    "shard_coo",
    "shard_csf",
    "shard_bcsf",
    "shard_csl",
    "shard_hbcsf",
    "shard_plan_for",
]

#: chunks produced per worker.  Oversubscription lets LPT even out chunks
#: whose nnz targets could not be hit exactly (cuts land on row/slice
#: boundaries); heavy slices become isolated chunks instead of dragging a
#: whole per-worker share with them.
OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class Shard:
    """One unit of worker work: a row-disjoint piece of the representation.

    ``kind`` selects the executing kernel (``"coo"`` / ``"csf"`` /
    ``"csl"``); ``rep`` is the sub-representation (array views into the
    parent wherever the formats allow); ``cost`` is the nnz-based load
    estimate LPT balanced.  COO shards carry the accumulation method the
    serial kernel would have chosen for the *full* representation
    (``coo_method``), so the threaded result replays serial's exact
    strategy.
    """

    kind: str
    rep: object
    cost: float
    coo_method: str | None = None


@dataclass(frozen=True)
class ShardPlan:
    """A complete partition of one representation for one worker count.

    ``assignment[i]`` is the worker that executes ``shards[i]``;
    ``loads`` is the per-worker cost total the LPT schedule produced.
    """

    format: str
    mode: int
    num_workers: int
    shards: tuple[Shard, ...]
    assignment: tuple[int, ...]
    loads: tuple[float, ...]
    total_nnz: int

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def nnz(self) -> int:
        """Nonzeros retained by the plan (the parent representation's nnz).

        Exposed under the name the plan cache's footprint estimator reads:
        shard ``rep``s hold views into the parent's value arrays, so a
        cached plan keeps those alive even if the parent's own build entry
        is evicted — the per-nonzero byte term must be charged to the plan.
        """
        return self.total_nnz

    @property
    def makespan(self) -> float:
        return max(self.loads) if self.loads else 0.0

    def worker_shards(self) -> list[list[Shard]]:
        """Shards grouped by worker, each list in shard-index order."""
        buckets: list[list[Shard]] = [[] for _ in range(self.num_workers)]
        for i, worker in enumerate(self.assignment):
            buckets[worker].append(self.shards[i])
        return buckets

    def index_storage_words(self) -> int:
        """32-bit words of index storage a cached plan keeps alive.

        Counts the rebased pointer copies the shards own *and* the index
        arrays their ``rep``s merely view (COO index columns, CSF fids,
        CSL slice/rest indices): a view pins the whole parent array, so a
        plan surviving its parent's build-cache entry retains essentially
        the parent's index footprint — the cache's byte bound must see it.
        The shards jointly cover the parent, so summing per-shard view
        lengths reproduces that footprint without reaching for the parent.
        """
        words = 0
        for shard in self.shards:
            rep = shard.rep
            if shard.kind == "coo":
                words += rep.order * rep.nnz
            elif shard.kind == "csf":
                words += sum(int(p.shape[0]) for p in rep.fptr)
                words += sum(int(f.shape[0]) for f in rep.fids)
            elif shard.kind == "csl":
                words += int(rep.slice_ptr.shape[0])
                words += int(rep.slice_inds.shape[0])
                words += (rep.order - 1) * rep.nnz
        return words


def _chunk_bounds(costs: np.ndarray, num_chunks: int) -> np.ndarray:
    """Boundaries ``[0..n]`` cutting ``costs`` into contiguous chunks of
    near-equal cumulative cost (cut positions snap to item boundaries)."""
    n = costs.shape[0]
    num_chunks = min(int(num_chunks), n)
    if num_chunks <= 1:
        return np.array([0, n], dtype=np.int64)
    cum = np.cumsum(costs)
    targets = cum[-1] * np.arange(1, num_chunks, dtype=np.float64) / num_chunks
    cuts = np.searchsorted(cum, targets, side="left") + 1
    return np.unique(np.concatenate(([0], cuts, [n]))).astype(np.int64)


def _assemble(format: str, mode: int, num_workers: int,
              shards: list[Shard], total_nnz: int) -> ShardPlan:
    costs = np.array([s.cost for s in shards], dtype=np.float64)
    assignment, loads = lpt_assign(costs, num_workers)
    return ShardPlan(
        format=format,
        mode=int(mode),
        num_workers=int(num_workers),
        shards=tuple(shards),
        assignment=tuple(int(w) for w in assignment),
        loads=tuple(float(x) for x in loads),
        total_nnz=int(total_nnz),
    )


# --------------------------------------------------------------------- #
# per-format shard builders
# --------------------------------------------------------------------- #
def _coo_shards(rep: CooTensor, mode: int, num_workers: int) -> list[Shard]:
    """Row-run chunks of a mode-major-sorted COO tensor.

    The accumulation method is pinned to what the serial kernel's
    ``"auto"`` would pick from the FULL nnz — per-shard nnz falls below
    :data:`SORT_MIN_NNZ` long before the serial path would, and switching
    strategies per shard would not be the serial computation any more.
    """
    if rep.nnz == 0:
        return []
    method = "sort" if rep.nnz >= SORT_MIN_NNZ else "add_at"
    idx = rep.indices[:, mode]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(idx)) + 1))
    edges = np.concatenate((starts, [rep.nnz]))
    row_nnz = np.diff(edges).astype(np.float64)
    bounds = _chunk_bounds(row_nnz, num_workers * OVERSUBSCRIPTION)
    shards = []
    for r0, r1 in zip(bounds[:-1], bounds[1:]):
        a, b = int(edges[r0]), int(edges[r1])
        sub = CooTensor(rep.indices[a:b], rep.values[a:b], rep.shape,
                        validate=False)
        shards.append(Shard(kind="coo", rep=sub, cost=float(b - a),
                            coo_method=method))
    return shards


def _csf_subtree(csf: CsfTensor, s0: int, s1: int) -> CsfTensor:
    """The sub-tree of slices ``[s0, s1)`` — fids/values are views, only
    the pointer arrays are rebased copies."""
    lo, hi = int(s0), int(s1)
    sub_fids = [csf.fids[0][lo:hi]]
    sub_fptr = []
    for level in range(csf.order - 1):
        ptr = csf.fptr[level]
        sub_fptr.append(ptr[lo:hi + 1] - ptr[lo])
        lo, hi = int(ptr[lo]), int(ptr[hi])
        sub_fids.append(csf.fids[level + 1][lo:hi])
    return CsfTensor(csf.shape, csf.mode_order, sub_fptr, sub_fids,
                     csf.values[lo:hi])


def _csf_shards(csf: CsfTensor, num_workers: int) -> list[Shard]:
    """Contiguous slice-range sub-trees of a CSF tree."""
    if csf.nnz == 0:
        return []
    costs = csf.nnz_per_slice().astype(np.float64)
    bounds = _chunk_bounds(costs, num_workers * OVERSUBSCRIPTION)
    return [
        Shard(kind="csf", rep=_csf_subtree(csf, s0, s1),
              cost=float(costs[s0:s1].sum()))
        for s0, s1 in zip(bounds[:-1], bounds[1:])
    ]


def _csl_shards(group, num_workers: int) -> list[Shard]:
    """Contiguous slice ranges of a CSL group (pointer rebase only)."""
    if group.nnz == 0:
        return []
    costs = np.diff(group.slice_ptr).astype(np.float64)
    bounds = _chunk_bounds(costs, num_workers * OVERSUBSCRIPTION)
    shards = []
    for s0, s1 in zip(bounds[:-1], bounds[1:]):
        p0, p1 = int(group.slice_ptr[s0]), int(group.slice_ptr[s1])
        sub = type(group)(
            shape=group.shape,
            mode_order=group.mode_order,
            slice_ptr=group.slice_ptr[s0:s1 + 1] - p0,
            slice_inds=group.slice_inds[s0:s1],
            rest_indices=group.rest_indices[p0:p1],
            values=group.values[p0:p1],
        )
        shards.append(Shard(kind="csl", rep=sub, cost=float(p1 - p0)))
    return shards


def shard_coo(rep: CooTensor, mode: int, num_workers: int) -> ShardPlan:
    return _assemble("coo", mode, num_workers,
                     _coo_shards(rep, mode, num_workers), rep.nnz)


def shard_csf(rep: CsfTensor, mode: int, num_workers: int) -> ShardPlan:
    return _assemble("csf", mode, num_workers,
                     _csf_shards(rep, num_workers), rep.nnz)


def shard_bcsf(rep, mode: int, num_workers: int) -> ShardPlan:
    """B-CSF shards over the fiber-split tree (fbr-split is inherited; the
    slc-split thread-block binning is a GPU concept the CPU workers replace
    with LPT over slice-range chunks)."""
    return _assemble("b-csf", mode, num_workers,
                     _csf_shards(rep.csf, num_workers), rep.nnz)


def shard_csl(rep, mode: int, num_workers: int) -> ShardPlan:
    return _assemble("csl", mode, num_workers,
                     _csl_shards(rep, num_workers), rep.nnz)


def shard_hbcsf(rep, mode: int, num_workers: int) -> ShardPlan:
    """Compose the three group partitions (groups have disjoint root rows,
    so their shards are mutually row-disjoint by construction)."""
    shards: list[Shard] = []
    if rep.coo_group.nnz:
        shards.extend(_coo_shards(rep.coo_group, rep.root_mode, num_workers))
    if rep.csl_group.nnz:
        shards.extend(_csl_shards(rep.csl_group, num_workers))
    if rep.bcsf_group is not None and rep.bcsf_group.nnz:
        shards.extend(_csf_shards(rep.bcsf_group.csf, num_workers))
    return _assemble("hb-csf", mode, num_workers, shards, rep.nnz)


# --------------------------------------------------------------------- #
# cached sharding
# --------------------------------------------------------------------- #
#: (id(rep), mode, workers) -> ShardPlan; entries evaporate with their rep
#: (same finalizer pattern as the tensor-fingerprint memo).
_MEMO: dict[tuple, ShardPlan] = {}
_MEMO_LOCK = threading.Lock()


def shard_plan_for(spec, rep, mode: int, num_workers: int,
                   plan_key: tuple | None = None) -> ShardPlan:
    """Build (or fetch) the shard plan for one representation.

    Two cache layers: an object-identity memo (representations served by
    the plan cache keep a stable id, so repeat calls are dict hits), and —
    when the caller knows the representation's build-plan key — the
    content-addressed plan cache itself under ``plan_key + ("shards", P)``,
    which survives the representation being rebuilt and is evicted/
    discarded together with the format's other build artifacts.
    """
    memo_key = (id(rep), int(mode), int(num_workers))
    with _MEMO_LOCK:
        plan = _MEMO.get(memo_key)
    if plan is not None:
        return plan

    from repro.formats.plan_cache import plan_cache

    cache = plan_cache()
    cache_key = (plan_key + ("shards", int(num_workers))
                 if plan_key is not None else None)
    if cache_key is not None:
        entry = cache.get(cache_key)
        if entry is not None:
            plan = entry.rep

    if plan is None:
        start = time.perf_counter()
        plan = spec.sharder(rep, mode, num_workers)
        seconds = time.perf_counter() - start
        if cache_key is not None:
            cache.put(cache_key, plan, seconds)

    with _MEMO_LOCK:
        if memo_key not in _MEMO:
            _MEMO[memo_key] = plan
            weakref.finalize(rep, _MEMO.pop, memo_key, None)
    return plan
