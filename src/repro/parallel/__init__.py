"""Multi-core CPU execution: shared LPT scheduling, worker pool, sharding.

The package has four small modules with one import rule — everything here
may depend on :mod:`repro.tensor` / :mod:`repro.kernels`, but only
:mod:`repro.parallel.partition` may reach (lazily) into
:mod:`repro.formats`, keeping the format registry free to import the pool
at module level without a cycle.

* :mod:`repro.parallel.lpt` — the one chunk-folded LPT implementation
  (shared by ``gpusim.schedule_blocks``, ``baselines.cpu_model`` and the
  threaded backend).
* :mod:`repro.parallel.pool` — backend/worker resolution
  (``REPRO_BACKEND`` / ``REPRO_NUM_WORKERS``) and the process-global
  reusable :class:`~concurrent.futures.ThreadPoolExecutor`.
* :mod:`repro.parallel.partition` — row-disjoint shard plans per format,
  cached content-addressed next to the format builds they partition.
* :mod:`repro.parallel.execute` — runs a shard plan's serial kernels on
  pool threads, bit-identical to the serial backend.

See ``src/repro/parallel/README.md`` for the partition/reduce contract and
an honest account of when threads lose.
"""

from repro.parallel.execute import threaded_mttkrp
from repro.parallel.lpt import lpt_assign, lpt_loads
from repro.parallel.partition import (
    OVERSUBSCRIPTION,
    Shard,
    ShardPlan,
    shard_plan_for,
)
from repro.parallel.pool import (
    BACKEND_ENV,
    BACKENDS,
    WORKERS_ENV,
    get_pool,
    resolve_backend,
    resolve_workers,
    run_tasks,
    shutdown_pool,
)

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "WORKERS_ENV",
    "OVERSUBSCRIPTION",
    "Shard",
    "ShardPlan",
    "lpt_assign",
    "lpt_loads",
    "get_pool",
    "resolve_backend",
    "resolve_workers",
    "run_tasks",
    "shutdown_pool",
    "shard_plan_for",
    "threaded_mttkrp",
]
