"""Chunk-folded LPT list scheduling — the one load-balancing implementation.

The paper's scheduling math appears in three places: the GPU simulator
distributes thread blocks to SMs, the CPU baseline model distributes tasks
to OpenMP threads, and (since the threaded execution backend) real worker
threads receive shards of MTTKRP work.  All three are list scheduling over
per-task cost estimates, so they share this module instead of keeping three
copies (``gpusim.executor.schedule_blocks`` and
``baselines.cpu_model.schedule_tasks`` now delegate here).

Two fully vectorised paths:

* **Uniform costs** — greedy list scheduling on equal costs is exactly
  round-robin, so loads have the closed form ``cost * ceil-or-floor(n/P)``
  and task ``i`` lands on worker ``i % P``.
* **General costs** — chunk-folded LPT: tasks are sorted by descending
  cost and consumed ``P`` at a time; each chunk's largest task goes to the
  currently least-loaded worker (one ``argsort`` of the P loads per chunk,
  no per-task Python work).  Like greedy-heap list scheduling the makespan
  conserves total work, is bounded below by ``max(cost)`` and ``sum/P``,
  and stays within the classic ``sum/P + max(cost)`` bound, because
  folding a descending chunk onto ascending loads never lets two worker
  loads drift further apart than one task cost.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lpt_loads", "lpt_assign"]


def lpt_loads(costs: np.ndarray, num_workers: int) -> np.ndarray:
    """Per-worker busy totals of the LPT schedule (loads only, no mapping).

    Exactly the busy vector :func:`lpt_assign` produces, computed without
    materialising the task→worker assignment — the analytical models
    (gpusim block scheduling, the CPU baseline model) only need the
    makespan and the load distribution.
    """
    busy = np.zeros(num_workers, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.shape[0]
    if n == 0:
        return busy
    if n <= num_workers:
        busy[:n] = costs
        return busy

    c_max = float(costs.max())
    if c_max == float(costs.min()):
        # closed form: greedy on equal costs is round-robin
        per_worker, extra = divmod(n, num_workers)
        busy[:] = per_worker * c_max
        busy[:extra] += c_max
        return busy

    order = np.argsort(costs, kind="stable")[::-1]
    padded = np.zeros(-(-n // num_workers) * num_workers, dtype=np.float64)
    padded[:n] = costs[order]
    for chunk in padded.reshape(-1, num_workers):
        # chunk is descending, argsort(busy) ascending: the chunk's largest
        # task lands on the least-loaded worker
        busy[np.argsort(busy, kind="stable")] += chunk
    return busy


def lpt_assign(costs: np.ndarray,
               num_workers: int) -> tuple[np.ndarray, np.ndarray]:
    """LPT schedule with the explicit task→worker mapping.

    Returns ``(assignment, loads)`` where ``assignment[i]`` is the worker
    executing task ``i`` and ``loads`` is the per-worker busy vector (equal
    to :func:`lpt_loads` of the same inputs).  Used by the threaded
    execution backend, which must actually hand each shard to a thread.
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.shape[0]
    loads = np.zeros(num_workers, dtype=np.float64)
    assignment = np.zeros(n, dtype=np.int64)
    if n == 0:
        return assignment, loads
    if n <= num_workers:
        assignment[:] = np.arange(n)
        loads[:n] = costs
        return assignment, loads

    c_max = float(costs.max())
    if c_max == float(costs.min()):
        assignment[:] = np.arange(n) % num_workers
        per_worker, extra = divmod(n, num_workers)
        loads[:] = per_worker * c_max
        loads[:extra] += c_max
        return assignment, loads

    order = np.argsort(costs, kind="stable")[::-1]
    n_chunks = -(-n // num_workers)
    padded = np.zeros(n_chunks * num_workers, dtype=np.float64)
    padded[:n] = costs[order]
    padded_workers = np.empty(n_chunks * num_workers, dtype=np.int64)
    for c in range(n_chunks):
        chunk = padded[c * num_workers:(c + 1) * num_workers]
        ranks = np.argsort(loads, kind="stable")
        loads[ranks] += chunk
        padded_workers[c * num_workers:(c + 1) * num_workers] = ranks
    assignment[order] = padded_workers[:n]
    return assignment, loads
