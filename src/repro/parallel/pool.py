"""Backend resolution and the reusable worker-pool runtime.

The execution backend is a per-call choice (``backend="serial"|"threads"``
on :func:`repro.core.mttkrp.mttkrp`, :class:`~repro.core.mttkrp.MttkrpPlan`,
``cp_als`` and :meth:`repro.formats.FormatSpec.mttkrp`) with a process-wide
default taken from the environment:

* ``REPRO_BACKEND`` — ``serial`` (default) or ``threads``; lets CI run the
  whole test suite threaded without touching any call site.
* ``REPRO_NUM_WORKERS`` — worker count for the threaded backend; defaults
  to the machine's CPU count.

The pool itself is one process-global :class:`ThreadPoolExecutor`, created
on first threaded call and reused afterwards — thread spawn cost is paid
once per process, not once per MTTKRP.  It only ever grows: requesting more
workers than the current pool holds replaces it with a larger one.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.util.errors import ValidationError

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "WORKERS_ENV",
    "resolve_backend",
    "resolve_workers",
    "get_pool",
    "run_tasks",
    "shutdown_pool",
]

#: the execution backends the dispatch layer understands.
BACKENDS = ("serial", "threads")

#: environment variable supplying the default backend (empty = unset).
BACKEND_ENV = "REPRO_BACKEND"

#: environment variable supplying the default worker count (empty = unset).
WORKERS_ENV = "REPRO_NUM_WORKERS"


def resolve_backend(backend: str | None = None) -> str:
    """Normalise a backend choice; ``None`` falls back to the environment.

    An empty/whitespace ``REPRO_BACKEND`` counts as unset (CI matrices set
    the variable to ``""`` on the serial leg rather than deleting it).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip() or "serial"
    if not isinstance(backend, str):
        raise ValidationError(
            f"backend must be a string, got {type(backend).__name__}")
    folded = backend.strip().lower()
    if folded not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; choose one of {', '.join(BACKENDS)}")
    return folded


def resolve_workers(num_workers: int | None = None) -> int:
    """Normalise a worker count; ``None`` falls back to env / CPU count."""
    if num_workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            num_workers = env
        else:
            return max(1, os.cpu_count() or 1)
    try:
        workers = int(num_workers)
    except (TypeError, ValueError):
        raise ValidationError(
            f"num_workers must be an integer, got {num_workers!r}") from None
    if workers < 1:
        raise ValidationError(f"num_workers must be >= 1, got {workers}")
    return workers


_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_WORKERS = 0


def get_pool(num_workers: int) -> ThreadPoolExecutor:
    """The shared executor, grown to hold at least ``num_workers`` threads."""
    global _POOL, _POOL_WORKERS
    num_workers = resolve_workers(num_workers)
    with _LOCK:
        if _POOL is None or _POOL_WORKERS < num_workers:
            old = _POOL
            _POOL = ThreadPoolExecutor(max_workers=num_workers,
                                       thread_name_prefix="repro-worker")
            _POOL_WORKERS = num_workers
            if old is not None:
                # in-flight tasks finish on the old pool's threads; new work
                # lands on the bigger pool
                old.shutdown(wait=False)
        return _POOL


def run_tasks(tasks: Sequence[Callable[[], object]]) -> list[object]:
    """Execute zero-argument tasks on the shared pool; return their results.

    Results come back in task order regardless of completion order, and the
    first task exception propagates to the caller (remaining tasks still
    run — they share output rows with nobody, so letting them finish is
    harmless and keeps the pool state simple).  A single task runs inline:
    no submission overhead, and callers never deadlock by running inside a
    pool thread themselves.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if len(tasks) == 1:
        return [tasks[0]()]
    pool = get_pool(len(tasks))
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def shutdown_pool() -> None:
    """Tear down the shared pool (tests / interpreter shutdown hygiene)."""
    global _POOL, _POOL_WORKERS
    with _LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0
