"""Threaded MTTKRP execution over a shard plan.

Thin by design: :mod:`repro.parallel.partition` already guarantees the
shards of a plan touch disjoint output rows, so execution is just "run the
serial kernel of each shard into the shared output from a pool thread".
Per-worker task order follows shard-index order, though any output row is
written by exactly one shard, so ordering is a non-issue for determinism —
the serial float association lives entirely inside each shard's kernel.

NumPy kernels release the GIL inside the heavy ufunc loops, which is where
the actual parallelism comes from; the Python-level shard dispatch is
serialised by the GIL but is O(shards), not O(nnz).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.partition import Shard, shard_plan_for
from repro.parallel.pool import resolve_workers, run_tasks
from repro.telemetry import counter_add, span, tracing_enabled
from repro.tensor.dense import _check_factors
from repro.util.dtypes import resolve_dtype
from repro.util.errors import DimensionError, ValidationError

__all__ = ["threaded_mttkrp"]


def _run_shard(shard: Shard, factors: list[np.ndarray], mode: int,
               out: np.ndarray, coo_method: str | None) -> None:
    """Execute one shard's serial kernel into the shared output."""
    if shard.kind == "coo":
        from repro.kernels.coo_mttkrp import coo_mttkrp

        coo_mttkrp(shard.rep, factors, mode, out=out,
                   method=coo_method or shard.coo_method or "auto",
                   validate=False)
    elif shard.kind == "csf":
        from repro.kernels.csf_mttkrp import csf_mttkrp

        csf_mttkrp(shard.rep, factors, out=out, validate=False)
    elif shard.kind == "csl":
        shard.rep.mttkrp(factors, out, validate=False)
    else:  # pragma: no cover - partitioner only emits the three kinds
        raise ValueError(f"unknown shard kind {shard.kind!r}")


def threaded_mttkrp(
    spec,
    rep,
    factors: list[np.ndarray],
    mode: int,
    out: np.ndarray | None = None,
    *,
    dtype=None,
    validate: bool = True,
    coo_method: str | None = None,
    num_workers: int | None = None,
    plan_key: tuple | None = None,
) -> np.ndarray:
    """MTTKRP of a built representation on the threaded backend.

    Bit-identical to ``spec.mttkrp(rep, ...)`` on the serial backend: the
    shard plan cuts only at output-row boundaries and each shard runs the
    unmodified serial kernel.  ``coo_method`` pins the COO accumulation
    strategy (tuner decisions); when ``None``, COO shards replay the
    ``"auto"`` choice the serial kernel would make for the full nnz.
    ``"bincount"`` is rejected: its accumulator read-modify-writes *every*
    output row (one full-column ``+=`` per factor column), so concurrent
    shards would lose updates — run it serially or pin ``"sort"`` instead.

    ``plan_key`` — the representation's build-plan cache key — lets the
    shard plan be content-addressed alongside the build artifact it
    partitions.
    """
    if coo_method == "bincount":
        raise ValidationError(
            'coo_method="bincount" is serial-only: its accumulator writes '
            "every output row, so concurrent shards would race on the "
            'shared output; use backend="serial" or coo_method="sort"')
    if validate:
        rank = _check_factors(rep.shape, factors, mode)
    else:
        rank = factors[mode].shape[1]
    rows = rep.shape[mode]
    if out is None:
        out = np.zeros((rows, rank), dtype=resolve_dtype(dtype))
    elif out.shape != (rows, rank):
        raise DimensionError(
            f"out has shape {out.shape}, expected {(rows, rank)}")

    workers = resolve_workers(num_workers)
    plan = shard_plan_for(spec, rep, mode, workers, plan_key)
    if not plan.shards:
        return out

    # cast once here so pool threads share the cast arrays instead of each
    # shard's kernel casting its own copy
    factors = [np.asarray(f, dtype=out.dtype) for f in factors]
    buckets = [(w, b) for w, b in enumerate(plan.worker_shards()) if b]
    counter_add("parallel.dispatches")
    counter_add("parallel.shards", len(plan.shards))
    if not tracing_enabled():
        run_tasks([
            (lambda bucket=bucket: [
                _run_shard(shard, factors, mode, out, coo_method)
                for shard in bucket
            ])
            for _, bucket in buckets
        ])
        return out

    # traced dispatch: one span per shard, explicitly parented under this
    # dispatch span (pool threads have their own span stacks, so implicit
    # nesting cannot cross the thread boundary).  The shard attrs carry the
    # LPT assignment — worker index and integer nnz cost — so a trace
    # reconstructs the per-worker timeline and checks it against
    # ``plan.loads`` exactly.
    with span("parallel.execute", format=spec.name, mode=mode,
              num_workers=plan.num_workers, shards=len(plan.shards),
              loads=list(plan.loads), makespan=plan.makespan,
              total_nnz=plan.total_nnz) as ex:
        parent_id = ex.id

        def _run_traced(worker: int, shard: Shard) -> None:
            with span("parallel.shard", parent=parent_id, worker=worker,
                      cost=shard.cost, kind=shard.kind):
                _run_shard(shard, factors, mode, out, coo_method)

        run_tasks([
            (lambda worker=worker, bucket=bucket: [
                _run_traced(worker, shard) for shard in bucket
            ])
            for worker, bucket in buckets
        ])
    return out
