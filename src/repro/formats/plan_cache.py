"""Content-addressed build-plan cache.

Building a sparse-format representation (CSF tree, B-CSF splitting, HB-CSF
partition) is the pre-processing cost the paper's Figures 9 and 10 analyse —
and it used to be paid on *every* ``mttkrp()`` call, every experiment figure
and every bench sweep that touched the same tensor.  This module caches
built representations keyed by content, not identity:

    (tensor fingerprint, format name, mode, split-config token)

The fingerprint hashes the tensor's shape, indices and values, so two
``CooTensor`` objects with equal content share cache entries.  Entries keep
the wall-clock seconds of the original build; consumers that account for
pre-processing time (``MttkrpPlan``, CPD-ALS) report that recorded cost even
when the structure came from the cache, which keeps the paper's
preprocessing-vs-iteration trade-off measurements honest while the repeated
builds themselves are amortised away.

The cache is a process-global LRU (:func:`plan_cache`) bounded both by
entry count and by an approximate payload-byte cap, so sweeping many large
tensors (a full bench matrix, a dataset-zoo ALS run) evicts old
representations instead of pinning them for the process lifetime.  Tensors
are treated as immutable, which :class:`~repro.tensor.coo.CooTensor` (a
frozen dataclass) already promises.  Mutating a tensor's arrays in place
after a build has never been supported and would now also alias a stale
cache entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.faults.hooks import fault_point
from repro.telemetry.counters import counter_add
from repro.util.errors import ValidationError

__all__ = [
    "PlanBuild",
    "PlanCache",
    "plan_cache",
    "plan_cache_stats",
    "clear_plan_cache",
    "tensor_fingerprint",
    "config_token",
]

#: default number of cached representations (one per tensor x mode x
#: config cell).
DEFAULT_MAX_ENTRIES = 64

#: default approximate payload cap; once the estimated bytes of all cached
#: representations exceed this, least-recently-used entries are evicted
#: even if the entry count is below :data:`DEFAULT_MAX_ENTRIES`.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _estimate_rep_bytes(rep) -> int:
    """Approximate footprint of a built representation.

    Uses the format's own storage accounting (``index_storage_words``,
    32-bit words) plus 8 bytes per nonzero for the values; representations
    exposing neither are counted as zero (bounded by the entry cap alone).
    """
    try:
        nnz = int(getattr(rep, "nnz", 0))
    except (TypeError, ValueError):
        nnz = 0
    try:
        words = int(rep.index_storage_words())
    except AttributeError:
        # plain COO representations store one index per mode per nonzero
        words = int(getattr(rep, "order", 0)) * nnz
    return words * 4 + nnz * 8

#: id(tensor) -> fingerprint memo; entries evaporate with their tensor.
_FINGERPRINTS: dict[int, str] = {}
_FINGERPRINT_LOCK = threading.Lock()


def tensor_fingerprint(tensor) -> str:
    """Content hash of a sparse tensor (shape + indices + values).

    The digest is memoised per tensor *object* (evicted by a weakref
    finalizer when the tensor is collected), so repeated plan builds hash
    each tensor once.
    """
    key = id(tensor)
    cached = _FINGERPRINTS.get(key)
    if cached is not None:
        return cached
    digest_fn = getattr(tensor, "manifest_digest", None)
    if callable(digest_fn):
        # Sharded tensors are content-addressed by their manifest (which
        # embeds a sha256 per shard payload) — never pull GBs of mmap'd
        # indices through the hash.
        digest = "sharded:" + digest_fn()
        with _FINGERPRINT_LOCK:
            if key not in _FINGERPRINTS:
                _FINGERPRINTS[key] = digest
                weakref.finalize(tensor, _FINGERPRINTS.pop, key, None)
        return digest
    h = hashlib.sha256()
    h.update(repr(tuple(tensor.shape)).encode())
    for arr in (tensor.indices, tensor.values):
        arr = np.ascontiguousarray(arr)
        h.update(arr.dtype.str.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    digest = h.hexdigest()
    with _FINGERPRINT_LOCK:
        if key not in _FINGERPRINTS:
            _FINGERPRINTS[key] = digest
            weakref.finalize(tensor, _FINGERPRINTS.pop, key, None)
    return digest


def config_token(config) -> str:
    """Stable cache-key token for a (possibly ``None``) build config."""
    if config is None:
        return "default"
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        items = sorted(dataclasses.asdict(config).items())
        return ",".join(f"{k}={v!r}" for k, v in items)
    return repr(config)


@dataclass(frozen=True)
class PlanBuild:
    """Result of :func:`repro.formats.build_plan`.

    ``build_seconds`` is the wall-clock cost of the original construction
    (recorded once, replayed on hits); ``cache_hit`` says whether this call
    actually built anything.
    """

    rep: object
    build_seconds: float
    cache_hit: bool
    key: tuple


@dataclass
class _Entry:
    rep: object
    build_seconds: float
    approx_bytes: int = 0


class PlanCache:
    """An LRU of built format representations with hit statistics.

    Bounded by ``max_entries`` and (approximately) by ``max_bytes``: the
    per-entry footprint is estimated from the format's own storage
    accounting, and least-recently-used entries are dropped while either
    bound is exceeded (the most recent entry always stays).

    Thread-safe: one lock serialises lookups (which mutate LRU order, the
    counters and the amortised-seconds tally), insertions, discards and
    stats snapshots — the threaded execution backend and concurrent
    ``MttkrpPlan`` users hit this cache from worker threads.

    ``telemetry=True`` (the process-global instance) mirrors every
    hit/miss/eviction into the :mod:`repro.telemetry` counter registry as
    ``plan_cache.*``, so bench cells and traces see cache behaviour as
    deltas without touching this object's cumulative totals.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 telemetry: bool = False):
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValidationError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.telemetry = bool(telemetry)
        self.enabled = True
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._approx_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: build seconds that cache hits avoided re-spending.
        self.amortised_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> _Entry | None:
        if not self.enabled:
            return None
        # "plan_cache.load" is the lookup fault point: a fired raise is a
        # simulated crash inside the cache, a fired corrupt/truncate (no
        # file here — the cache is in-memory, derivable state) drops the
        # entry so the caller transparently rebuilds it, a stall models a
        # slow cold path.
        fired = fault_point("plan_cache.load")
        lost = any(kind in ("corrupt", "truncate") for kind in fired)
        recovered = False
        with self._lock:
            entry = self._entries.get(key)
            if lost and entry is not None:
                self._entries.pop(key)
                self._approx_bytes -= entry.approx_bytes
                entry = None
                recovered = True
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                self.amortised_seconds += entry.build_seconds
        if recovered:
            # the rebuild the caller now performs *is* the recovery
            counter_add("faults.recovered")
        if self.telemetry:
            counter_add("plan_cache.hits" if entry is not None
                        else "plan_cache.misses")
        return entry

    def put(self, key: tuple, rep, build_seconds: float) -> None:
        if not self.enabled:
            return
        entry = _Entry(rep=rep, build_seconds=build_seconds,
                       approx_bytes=_estimate_rep_bytes(rep))
        evicted_n = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._approx_bytes -= old.approx_bytes
            self._entries[key] = entry
            self._approx_bytes += entry.approx_bytes
            while len(self._entries) > 1 and (
                    len(self._entries) > self.max_entries
                    or self._approx_bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self._approx_bytes -= evicted.approx_bytes
                self.evictions += 1
                evicted_n += 1
        if self.telemetry:
            counter_add("plan_cache.inserts")
            if evicted_n:
                counter_add("plan_cache.evictions", evicted_n)

    def discard(self, *, format: str | None = None,
                fingerprint: str | None = None) -> int:
        """Drop entries matching the given key fields (AND semantics).

        Used to invalidate a format's cached representations when its
        registration is overwritten/removed, and by measurements that need
        a cold cache for one tensor without wiping unrelated entries.
        Returns the number of entries removed; counters are not reset.
        """
        removed = 0
        with self._lock:
            for key in list(self._entries):
                if format is not None and key[1] != format:
                    continue
                if fingerprint is not None and key[0] != fingerprint:
                    continue
                entry = self._entries.pop(key)
                self._approx_bytes -= entry.approx_bytes
                removed += 1
        return removed

    def clear(self, *, reset_stats: bool = True) -> None:
        with self._lock:
            self._entries.clear()
            self._approx_bytes = 0
            if reset_stats:
                self.hits = 0
                self.misses = 0
                self.evictions = 0
                self.amortised_seconds = 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "approx_bytes": self._approx_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "amortised_seconds": self.amortised_seconds,
            }


_GLOBAL_CACHE = PlanCache(telemetry=True)


def plan_cache() -> PlanCache:
    """The process-global plan cache used by :func:`repro.formats.build_plan`."""
    return _GLOBAL_CACHE


def plan_cache_stats() -> dict:
    """Snapshot of the global cache counters (hits/misses/evictions)."""
    return _GLOBAL_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop all cached representations and reset the counters."""
    _GLOBAL_CACHE.clear()
