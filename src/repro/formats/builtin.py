"""Registration of the built-in formats.

One :class:`~repro.formats.registry.FormatSpec` per format, in paper order:
the four public formats of the evaluation (COO, CSF, B-CSF, HB-CSF), CSL
(Section V-A — previously only reachable as an HB-CSF group), and the
baseline frameworks (SPLATT non-tiled/tiled, HiCOO, ParTI, F-COO).

All builder/kernel/simulation callables import their implementation modules
lazily, so importing :mod:`repro.formats` stays cheap and free of import
cycles; the implementation modules themselves know nothing about the
registry.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.formats.registry import FormatSpec, register_format
from repro.util.dtypes import cast_values, resolve_dtype
from repro.util.errors import ValidationError

__all__: list[str] = []


def _mode_major_order(order: int, mode: int) -> tuple[int, ...]:
    return tuple([mode] + [x for x in range(order) if x != mode])


def _is_sharded(tensor) -> bool:
    """Out-of-core input?  (duck-typed: see ``ShardedCooTensor.is_sharded``)"""
    return bool(getattr(tensor, "is_sharded", False))


def _materialized(tensor):
    """In-RAM COO view of a possibly sharded tensor.

    Used by the representations that are inherently in-memory (COO itself
    and the modeled baselines, whose classes do their own whole-tensor
    preprocessing); the CSF-family builders stream instead.
    """
    return tensor.to_coo() if _is_sharded(tensor) else tensor


def _simulate_kernel_for(workload, device, memory_model):
    from repro.gpusim.executor import simulate_kernel

    return simulate_kernel(workload, device, memory_model)


# Threaded-backend sharders (lazy like every other registered callable).
# Only the paper's own formats get one: the baselines model frameworks whose
# parallel execution we simulate, not reimplement.
def _coo_sharder(rep, mode, num_workers):
    from repro.parallel.partition import shard_coo

    return shard_coo(rep, mode, num_workers)


def _csf_sharder(rep, mode, num_workers):
    from repro.parallel.partition import shard_csf

    return shard_csf(rep, mode, num_workers)


def _bcsf_sharder(rep, mode, num_workers):
    from repro.parallel.partition import shard_bcsf

    return shard_bcsf(rep, mode, num_workers)


def _hbcsf_sharder(rep, mode, num_workers):
    from repro.parallel.partition import shard_hbcsf

    return shard_hbcsf(rep, mode, num_workers)


def _csl_sharder(rep, mode, num_workers):
    from repro.parallel.partition import shard_csl

    return shard_csl(rep, mode, num_workers)


# --------------------------------------------------------------------- #
# coo
# --------------------------------------------------------------------- #
def _coo_builder(tensor, mode, config):
    # COO needs no structure beyond a mode-major sort — the (cheap)
    # preprocessing real COO frameworks do.  CooTensor is the package's
    # float64 interchange format, so this builder deliberately takes no
    # dtype parameter: the representation is dtype-independent (one plan
    # cache entry serves every compute dtype) and the kernel applies the
    # dtype policy per call (values cast on the fly; the (nnz, R)
    # accumulator — the dominant traffic — is computed in the compute
    # dtype either way).  A sharded input is materialised: the COO kernel
    # walks raw index columns, so the representation is the arrays.
    tensor = _materialized(tensor)
    return tensor.sorted_by_modes(_mode_major_order(tensor.order, mode))


def _coo_kernel(rep, factors, mode, out, validate=True, dtype=None):
    from repro.kernels.coo_mttkrp import coo_mttkrp

    return coo_mttkrp(rep, factors, mode, out=out, dtype=dtype,
                      validate=validate)


def _coo_gpusim(tensor, mode, rank, device, launch, config, costs,
                memory_model):
    from repro.gpusim.api import atomic_conflict_factor
    from repro.gpusim.kernels.coo_kernel import build_coo_workload

    factor = atomic_conflict_factor(tensor, mode)
    workload = build_coo_workload(tensor, mode, rank, launch, costs,
                                  atomic_conflict_factor=factor,
                                  name="parti-coo")
    return _simulate_kernel_for(workload, device, memory_model)


register_format(FormatSpec(
    name="coo",
    kind="own",
    description="coordinate format; atomic-style accumulation (Algorithm 2)",
    aliases=("coordinate", "coo-atomic"),
    builder=_coo_builder,
    cpu_kernel=_coo_kernel,
    gpusim=_coo_gpusim,
    index_words=lambda rep: rep.order * rep.nnz,
    sharder=_coo_sharder,
))


# --------------------------------------------------------------------- #
# csf
# --------------------------------------------------------------------- #
def _csf_builder(tensor, mode, config, dtype=None):
    if _is_sharded(tensor):
        from repro.formats.streaming import streaming_csf

        return cast_values(streaming_csf(tensor, mode), dtype)
    from repro.tensor.csf import build_csf

    return cast_values(build_csf(tensor, mode), dtype)


def _csf_kernel(rep, factors, mode, out, validate=True, dtype=None):
    from repro.kernels.csf_mttkrp import csf_mttkrp

    return csf_mttkrp(rep, factors, out=out, dtype=dtype, validate=validate)


def _csf_gpusim(tensor, mode, rank, device, launch, config, costs,
                memory_model):
    from repro.formats.registry import build_plan
    from repro.gpusim.kernels.csf_kernel import build_csf_workload

    rep = build_plan(tensor, "csf", mode).rep
    return _simulate_kernel_for(build_csf_workload(rep, rank, launch, costs),
                                device, memory_model)


register_format(FormatSpec(
    name="csf",
    kind="own",
    description="compressed sparse fiber tree (Algorithm 3); the unsplit "
                "GPU-CSF baseline on the simulator",
    aliases=("gpu-csf",),
    builder=_csf_builder,
    cpu_kernel=_csf_kernel,
    gpusim=_csf_gpusim,
    sharder=_csf_sharder,
))


# --------------------------------------------------------------------- #
# b-csf
# --------------------------------------------------------------------- #
def _bcsf_builder(tensor, mode, config, dtype=None):
    if _is_sharded(tensor):
        from repro.formats.streaming import streaming_bcsf as build_bcsf
    else:
        from repro.core.bcsf import build_bcsf

    rep = build_bcsf(tensor, mode, config)
    cast = cast_values(rep.csf, dtype)
    return rep if cast is rep.csf else dataclasses.replace(rep, csf=cast)


def _rep_mttkrp_kernel(rep, factors, mode, out, validate=True, dtype=None):
    return rep.mttkrp(factors, out=out, dtype=dtype, validate=validate)


def _bcsf_gpusim(tensor, mode, rank, device, launch, config, costs,
                 memory_model):
    from repro.formats.registry import build_plan
    from repro.gpusim.kernels.csf_kernel import build_bcsf_workload

    rep = build_plan(tensor, "b-csf", mode, config).rep
    return _simulate_kernel_for(build_bcsf_workload(rep, rank, launch, costs),
                                device, memory_model)


register_format(FormatSpec(
    name="b-csf",
    kind="own",
    description="balanced CSF: fbr-split + slc-split load balancing "
                "(Section IV)",
    aliases=("bcsf", "balanced-csf"),
    builder=_bcsf_builder,
    cpu_kernel=_rep_mttkrp_kernel,
    gpusim=_bcsf_gpusim,
    needs_split_config=True,
    sharder=_bcsf_sharder,
))


# --------------------------------------------------------------------- #
# hb-csf
# --------------------------------------------------------------------- #
def _hbcsf_builder(tensor, mode, config, dtype=None):
    if _is_sharded(tensor):
        from repro.formats.streaming import streaming_hbcsf as build_hbcsf
    else:
        from repro.core.hybrid import build_hbcsf

    rep = build_hbcsf(tensor, mode, config)
    dtype = resolve_dtype(dtype)
    if dtype == np.float64:
        return rep
    # Downcast the value arrays the groups own (the COO group stays a
    # float64 CooTensor; its kernel casts on the fly).
    replacements = {}
    if rep.csl_group.nnz:
        replacements["csl_group"] = cast_values(rep.csl_group, dtype)
    if rep.bcsf_group is not None:
        cast = cast_values(rep.bcsf_group.csf, dtype)
        if cast is not rep.bcsf_group.csf:
            replacements["bcsf_group"] = dataclasses.replace(
                rep.bcsf_group, csf=cast)
    return dataclasses.replace(rep, **replacements) if replacements else rep


def _hbcsf_gpusim(tensor, mode, rank, device, launch, config, costs,
                  memory_model):
    from repro.formats.registry import build_plan
    from repro.gpusim.api import simulate_hbcsf_structure

    rep = build_plan(tensor, "hb-csf", mode, config).rep
    return simulate_hbcsf_structure(rep, rank, device, launch, costs,
                                    memory_model)


register_format(FormatSpec(
    name="hb-csf",
    kind="own",
    description="hybrid B-CSF: COO + CSL + B-CSF slice groups "
                "(Algorithm 5); the paper's recommended format",
    aliases=("hbcsf", "hybrid"),
    builder=_hbcsf_builder,
    cpu_kernel=_rep_mttkrp_kernel,
    gpusim=_hbcsf_gpusim,
    needs_split_config=True,
    sharder=_hbcsf_sharder,
))


# --------------------------------------------------------------------- #
# csl
# --------------------------------------------------------------------- #
def _csl_builder(tensor, mode, config, dtype=None):
    from repro.core.csl import build_csl_group

    if _is_sharded(tensor):
        from repro.formats.streaming import streaming_csf as build_csf
    else:
        from repro.tensor.csf import build_csf

    csf = build_csf(tensor, mode)
    try:
        group = build_csl_group(csf)
    except ValidationError as exc:
        raise ValidationError(
            f"format 'csl' cannot represent mode {mode} of this tensor: "
            f"{exc}  (CSL stores only slices whose fibers are all "
            "singletons; use 'hb-csf' to route such slices to CSL "
            "automatically)") from exc
    return cast_values(group, dtype)


def _csl_kernel(rep, factors, mode, out, validate=True, dtype=None):
    if out is None:
        rank = factors[mode].shape[1]
        out = np.zeros((rep.shape[mode], rank), dtype=resolve_dtype(dtype))
    return rep.mttkrp(factors, out, validate=validate)


def _csl_gpusim(tensor, mode, rank, device, launch, config, costs,
                memory_model):
    from repro.formats.registry import build_plan
    from repro.gpusim.kernels.csl_kernel import build_csl_workload

    rep = build_plan(tensor, "csl", mode).rep
    return _simulate_kernel_for(build_csl_workload(rep, rank, launch, costs),
                                device, memory_model)


register_format(FormatSpec(
    name="csl",
    kind="own",
    description="compressed slice: slice pointers address nonzeros "
                "directly; only for all-singleton-fiber slices "
                "(Section V-A)",
    aliases=("cs-l", "compressed-slice"),
    builder=_csl_builder,
    cpu_kernel=_csl_kernel,
    gpusim=_csl_gpusim,
    requires_singleton_fibers=True,
    sim_in_bench=False,
    sharder=_csl_sharder,
))


# --------------------------------------------------------------------- #
# baselines — each builder constructs the framework object once for all
# modes (their classes do ALLMODE-style preprocessing internally).
# --------------------------------------------------------------------- #
def _baseline_kernel(rep, factors, mode, out):
    return rep.mttkrp(factors, mode, out=out)


def _splatt_builder(tensor, mode, config):
    from repro.baselines.splatt import SplattMttkrp

    return SplattMttkrp(_materialized(tensor), tiled=False)


register_format(FormatSpec(
    name="splatt",
    kind="baseline",
    description="SPLATT 1.1.0 ALLMODE CSF-MTTKRP on the 28-core CPU, "
                "tiling off",
    aliases=("splatt-nontiled", "splatt-nt"),
    builder=_splatt_builder,
    cpu_kernel=_baseline_kernel,
    per_mode_build=False,
))


def _splatt_tiled_builder(tensor, mode, config):
    from repro.baselines.splatt import SplattMttkrp

    return SplattMttkrp(_materialized(tensor), tiled=True)


register_format(FormatSpec(
    name="splatt-tiled",
    kind="baseline",
    description="SPLATT ALLMODE with the cache-tiling option on",
    aliases=("splatt-t",),
    builder=_splatt_tiled_builder,
    cpu_kernel=_baseline_kernel,
    per_mode_build=False,
))


def _hicoo_builder(tensor, mode, config):
    from repro.baselines.hicoo import HicooMttkrp

    return HicooMttkrp(_materialized(tensor))


register_format(FormatSpec(
    name="hicoo",
    kind="baseline",
    description="HiCOO blocked-COO MTTKRP on the multicore CPU (SC'18)",
    aliases=("hicoo-cpu",),
    builder=_hicoo_builder,
    cpu_kernel=_baseline_kernel,
    per_mode_build=False,
))


def _parti_builder(tensor, mode, config):
    from repro.baselines.parti import PartiGpuMttkrp

    return PartiGpuMttkrp(_materialized(tensor))


register_format(FormatSpec(
    name="parti",
    kind="baseline",
    description="ParTI! atomic-COO MTTKRP on the GPU (third-order only)",
    aliases=("parti-gpu", "parti-coo"),
    builder=_parti_builder,
    cpu_kernel=_baseline_kernel,
    gpusim=_coo_gpusim,
    per_mode_build=False,
    cpu_supported_orders=(3,),
    sim_in_bench=False,
))


def _fcoo_builder(tensor, mode, config):
    from repro.baselines.fcoo import FcooGpuMttkrp

    return FcooGpuMttkrp(_materialized(tensor))


def _fcoo_gpusim(tensor, mode, rank, device, launch, config, costs,
                 memory_model):
    from repro.gpusim.kernels.fcoo_kernel import build_fcoo_workload

    workload = build_fcoo_workload(tensor, mode, rank, launch, costs)
    return _simulate_kernel_for(workload, device, memory_model)


register_format(FormatSpec(
    name="f-coo",
    kind="baseline",
    description="F-COO segmented-scan MTTKRP on the GPU (third-order only)",
    aliases=("fcoo", "fcoo-gpu", "f-coo-gpu", "flagged-coo"),
    builder=_fcoo_builder,
    cpu_kernel=_baseline_kernel,
    gpusim=_fcoo_gpusim,
    per_mode_build=False,
    cpu_supported_orders=(3,),
))
