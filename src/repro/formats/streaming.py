"""Chunk-streaming format builders for sharded COO tensors.

Every builder here consumes a :class:`~repro.tensor.shards.ShardedCooTensor`
through its mode-sorted, deduplicated shard view and emits the exact same
representation the in-memory builder produces from the materialised tensor
— **bit-identical**, not just numerically close:

* the sorted view's external merge sort is stable and sums duplicate
  coordinates with the same left-to-right ``np.bincount`` accumulation as
  ``CooTensor._sum_duplicates``;
* :class:`_StreamingCsfAssembler` reproduces ``build_csf``'s boundary-flag
  construction across chunk edges in two passes (count → allocate exact
  arrays → fill), so no per-level array is ever built twice;
* the HB-CSF path never materialises the full CSF tree: a
  :class:`_PartitionScanner` pass classifies every root slice with the
  same rules as ``partition_slices`` (and sizes all three groups), then a
  second pass routes each chunk's rows straight into preallocated COO /
  CSL arrays and a CSF assembler restricted to the B-CSF slices.  Group
  membership is per whole slice and the stream is mode-sorted, so each
  routed sub-stream is itself sorted and gap-free within its slices —
  the assembled groups match the in-memory carve-out bit for bit.

Peak RSS is therefore bounded by one sort block plus the *output*
representation — never the raw COO arrays, and for HB-CSF never the
intermediate full CSF tree either.
"""

from __future__ import annotations

import numpy as np

from repro.core.bcsf import BcsfTensor, build_bcsf
from repro.core.csl import CslGroup, build_csl_group, empty_csl_group
from repro.core.hybrid import HbcsfTensor, SlicePartition
from repro.core.splitting import SplitConfig
from repro.tensor.coo import CooTensor, INDEX_DTYPE, VALUE_DTYPE, csf_mode_ordering
from repro.tensor.csf import CsfTensor
from repro.tensor.shards import ShardedCooTensor
from repro.util.errors import DimensionError

__all__ = [
    "streaming_csf",
    "streaming_bcsf",
    "streaming_hbcsf",
    "streaming_csl",
]


def _level_bounds(idx: np.ndarray, mode_order: tuple[int, ...],
                  prev: np.ndarray | None) -> list[np.ndarray]:
    """Per-internal-level "new node starts here" flags for one chunk.

    ``prev`` is the last coordinate row of the previous chunk (``None`` at
    the start of the stream) so node boundaries crossing a chunk edge match
    the single-pass in-memory flags.
    """
    n = idx.shape[0]
    bounds: list[np.ndarray] = []
    coarser: np.ndarray | None = None
    for level in range(len(mode_order) - 1):
        col = idx[:, mode_order[level]]
        cur = np.empty(n, dtype=bool)
        cur[0] = True if prev is None else bool(
            col[0] != prev[mode_order[level]])
        cur[1:] = col[1:] != col[:-1]
        if coarser is not None:
            cur |= coarser
        bounds.append(cur)
        coarser = cur
    return bounds


class _StreamingCsfAssembler:
    """Two-pass CSF construction over sorted, deduplicated chunks.

    Pass 1 (:meth:`count`) runs the boundary flags over every chunk to size
    each level; :meth:`allocate` then creates the exact ``fids``/``fptr``
    arrays; pass 2 (:meth:`fill`) re-runs the flags and writes each chunk's
    slab.  The last coordinate row of the previous chunk is carried so node
    boundaries crossing a chunk edge match the single-pass in-memory flags.
    """

    def __init__(self, shape: tuple[int, ...],
                 mode_order: tuple[int, ...]) -> None:
        self.shape = shape
        self.mode_order = mode_order
        self.order = len(shape)
        self.node_counts = [0] * (self.order - 1)
        self.nnz = 0
        self._prev: np.ndarray | None = None
        self._fids: list[np.ndarray] | None = None
        self._fptr: list[np.ndarray] | None = None
        self._values: np.ndarray | None = None
        self._pos: list[int] | None = None
        self._leaf_pos = 0

    def _bounds(self, idx: np.ndarray) -> list[np.ndarray]:
        return _level_bounds(idx, self.mode_order, self._prev)

    def count(self, idx: np.ndarray) -> None:
        if idx.shape[0] == 0:
            return
        for level, b in enumerate(self._bounds(idx)):
            self.node_counts[level] += int(b.sum())
        self.nnz += int(idx.shape[0])
        self._prev = np.array(idx[-1])

    def allocate(self) -> None:
        self._fids = [np.empty(c, dtype=INDEX_DTYPE)
                      for c in self.node_counts]
        self._fids.append(np.empty(self.nnz, dtype=INDEX_DTYPE))
        self._fptr = [np.empty(c + 1, dtype=INDEX_DTYPE)
                      for c in self.node_counts]
        self._values = np.empty(self.nnz, dtype=VALUE_DTYPE)
        self._pos = [0] * (self.order - 1)
        self._leaf_pos = 0
        self._prev = None

    def fill(self, idx: np.ndarray, vals: np.ndarray) -> None:
        if idx.shape[0] == 0:
            return
        bounds = self._bounds(idx)
        csums = [np.cumsum(b) for b in bounds]
        for level in range(self.order - 1):
            starts = np.flatnonzero(bounds[level])
            k = starts.shape[0]
            p = self._pos[level]
            self._fids[level][p:p + k] = idx[starts, self.mode_order[level]]
            if level < self.order - 2:
                # a parent start is also a child start, so the global child
                # id at a parent's position is (children completed so far)
                # + (child boundaries at or before it in this chunk) - 1 —
                # exactly build_csf's searchsorted(child_starts, starts).
                self._fptr[level][p:p + k] = (
                    self._pos[level + 1] + csums[level + 1][starts] - 1)
            else:
                self._fptr[level][p:p + k] = self._leaf_pos + starts
            self._pos[level] += k
        n = idx.shape[0]
        self._fids[-1][self._leaf_pos:self._leaf_pos + n] = \
            idx[:, self.mode_order[-1]]
        self._values[self._leaf_pos:self._leaf_pos + n] = vals
        self._leaf_pos += n
        self._prev = np.array(idx[-1])

    def finish(self) -> CsfTensor:
        if self.nnz == 0:
            fids = [np.zeros(0, dtype=INDEX_DTYPE)
                    for _ in range(self.order)]
            fptr = [np.zeros(1, dtype=INDEX_DTYPE)
                    for _ in range(self.order - 1)]
            return CsfTensor(self.shape, self.mode_order, fptr, fids,
                             np.zeros(0, dtype=VALUE_DTYPE))
        for level in range(self.order - 2):
            self._fptr[level][-1] = self.node_counts[level + 1]
        self._fptr[self.order - 2][-1] = self.nnz
        return CsfTensor(self.shape, self.mode_order, self._fptr,
                         self._fids, self._values)


def streaming_csf(sharded: ShardedCooTensor, root_mode: int = 0,
                  mode_order=None) -> CsfTensor:
    """Out-of-core equivalent of :func:`repro.tensor.csf.build_csf`."""
    if mode_order is None:
        mode_order = csf_mode_ordering(sharded.order, root_mode)
    else:
        mode_order = tuple(int(m) for m in mode_order)
        if sorted(mode_order) != list(range(sharded.order)):
            raise DimensionError(
                f"{mode_order} is not a permutation of 0..{sharded.order - 1}")
    if sharded.order < 2:
        raise DimensionError("CSF requires an order >= 2 tensor")
    view = sharded.sorted_view(mode_order, dedup=True)
    asm = _StreamingCsfAssembler(sharded.shape, mode_order)
    for chunk in view.iter_chunks():
        asm.count(chunk.indices)
    asm.allocate()
    for chunk in view.iter_chunks():
        asm.fill(chunk.indices, chunk.values)
    return asm.finish()


def streaming_bcsf(sharded: ShardedCooTensor, mode: int = 0,
                   config: SplitConfig | None = None) -> BcsfTensor:
    """Out-of-core equivalent of :func:`repro.core.bcsf.build_bcsf`."""
    csf = streaming_csf(sharded, mode)
    return build_bcsf(csf, mode, config)


def streaming_csl(sharded: ShardedCooTensor, mode: int = 0) -> CslGroup:
    """Out-of-core CSL build; raises the same ``ValidationError`` as the
    in-memory path when a fiber of the selected mode is not a singleton."""
    csf = streaming_csf(sharded, mode)
    return build_csl_group(csf)


class _PartitionScanner:
    """One streaming pass collecting, per root index, the statistics
    Algorithm 5 partitions on — nonzeros per slice and maximum fiber
    length per slice — plus the per-level node counts of the would-be
    B-CSF subtree, so :func:`streaming_hbcsf` can preallocate every
    output array without materialising the full CSF tree or running a
    second counting pass.
    """

    def __init__(self, shape: tuple[int, ...],
                 mode_order: tuple[int, ...]) -> None:
        self.shape = shape
        self.mode_order = mode_order
        self.order = len(shape)
        dim = shape[mode_order[0]]
        self.nnz_per_root = np.zeros(dim, dtype=np.int64)
        # per-root node counts for internal levels 1 .. order-2
        self.level_counts = [np.zeros(dim, dtype=np.int64)
                             for _ in range(self.order - 2)]
        self.max_fiber_len = np.zeros(dim, dtype=np.int64)
        self._prev: np.ndarray | None = None
        self._open_len = 0    # nonzeros of the fiber still open at the edge
        self._open_root = -1  # root index that open fiber belongs to

    def scan(self, idx: np.ndarray) -> None:
        n = idx.shape[0]
        if n == 0:
            return
        bounds = _level_bounds(idx, self.mode_order, self._prev)
        dim = self.nnz_per_root.shape[0]
        root = idx[:, self.mode_order[0]]
        self.nnz_per_root += np.bincount(root, minlength=dim)
        for level in range(1, self.order - 1):
            self.level_counts[level - 1] += np.bincount(
                root[bounds[level]], minlength=dim)
        # Fiber lengths are gaps between starts at the deepest internal
        # level; a fiber spanning a chunk edge is carried as (_open_len,
        # _open_root) and closed by the next start (or finish()).
        starts = np.flatnonzero(bounds[self.order - 2])
        if starts.shape[0] == 0:
            self._open_len += n
        else:
            if self._open_root >= 0:
                first = self._open_len + int(starts[0])
                if first > self.max_fiber_len[self._open_root]:
                    self.max_fiber_len[self._open_root] = first
            if starts.shape[0] > 1:
                np.maximum.at(self.max_fiber_len, root[starts[:-1]],
                              np.diff(starts))
            self._open_len = n - int(starts[-1])
            self._open_root = int(root[starts[-1]])
        self._prev = np.array(idx[-1])

    def finish(self) -> tuple[np.ndarray, SlicePartition]:
        """Close the last fiber; return (present root ids, partition).

        ``present`` lists the root indices that hold nonzeros in ascending
        order — exactly the slice order of the in-memory CSF — and the
        partition masks classify them with the same rules as
        ``partition_slices``.
        """
        if self._open_root >= 0 and \
                self._open_len > self.max_fiber_len[self._open_root]:
            self.max_fiber_len[self._open_root] = self._open_len
        present = np.flatnonzero(self.nnz_per_root)
        coo_mask = self.nnz_per_root[present] == 1
        csl_mask = (~coo_mask) & (self.max_fiber_len[present] == 1)
        csf_mask = ~(coo_mask | csl_mask)
        partition = SlicePartition(coo_mask, csl_mask, csf_mask)
        partition.validate()
        return present, partition


def streaming_hbcsf(sharded: ShardedCooTensor, mode: int = 0,
                    config: SplitConfig | None = None) -> HbcsfTensor:
    """Out-of-core equivalent of :func:`repro.core.hybrid.build_hbcsf`.

    Identical partition and group contents, but assembled without ever
    holding the full CSF tree: a :class:`_PartitionScanner` pass sizes the
    three groups, then each chunk's rows are routed by their root slice's
    group straight into preallocated COO / CSL arrays or a
    :class:`_StreamingCsfAssembler` fed only the B-CSF slices.  Because
    group membership is per whole slice and the stream is mode-sorted,
    every routed sub-stream is sorted with no slice split across groups,
    so each group is bit-identical to the in-memory carve-out.
    """
    config = config or SplitConfig()
    if sharded.order < 2:
        raise DimensionError("HB-CSF requires an order >= 2 tensor")
    mode_order = csf_mode_ordering(sharded.order, mode)
    view = sharded.sorted_view(mode_order, dedup=True)

    scanner = _PartitionScanner(sharded.shape, mode_order)
    for chunk in view.iter_chunks():
        scanner.scan(chunk.indices)
    present, partition = scanner.finish()
    nnz_present = scanner.nnz_per_root[present]

    order = sharded.order
    root = mode_order[0]

    # COO group: one nonzero per slice, rows in stream (= sorted) order.
    coo_nnz = int(partition.coo_mask.sum())  # 1 nnz per COO slice
    coo_idx = np.empty((coo_nnz, order), dtype=INDEX_DTYPE)
    coo_vals = np.empty(coo_nnz, dtype=VALUE_DTYPE)

    # CSL group: non-root columns in mode_order[1:]; the slice pointer
    # comes straight from the scanner's per-slice nonzero counts.
    csl_nnz = int(nnz_present[partition.csl_mask].sum())
    rest_indices = np.empty((csl_nnz, order - 1), dtype=INDEX_DTYPE)
    csl_vals = np.empty(csl_nnz, dtype=VALUE_DTYPE)

    # B-CSF group: a CSF assembler whose level sizes are preset from the
    # scanner's per-root node counts — no count() pass over the stream.
    csf_roots = present[partition.csf_mask]
    asm = _StreamingCsfAssembler(sharded.shape, mode_order)
    asm.node_counts = [csf_roots.shape[0]] + [
        int(counts[csf_roots].sum()) for counts in scanner.level_counts]
    asm.nnz = int(nnz_present[partition.csf_mask].sum())
    asm.allocate()

    # 0 = COO, 1 = CSL, 2 = B-CSF; roots absent from the stream never
    # appear in a chunk, so their (arbitrary) label is never read.
    group_of_root = np.zeros(sharded.shape[root], dtype=np.int8)
    group_of_root[present[partition.csl_mask]] = 1
    group_of_root[csf_roots] = 2

    coo_pos = csl_pos = 0
    for chunk in view.iter_chunks():
        idx, vals = chunk.indices, chunk.values
        grp = group_of_root[idx[:, root]]
        sel = grp == 0
        k = int(sel.sum())
        if k:
            coo_idx[coo_pos:coo_pos + k] = idx[sel]
            coo_vals[coo_pos:coo_pos + k] = vals[sel]
            coo_pos += k
        sel = grp == 1
        k = int(sel.sum())
        if k:
            rows = idx[sel]
            for col, m in enumerate(mode_order[1:]):
                rest_indices[csl_pos:csl_pos + k, col] = rows[:, m]
            csl_vals[csl_pos:csl_pos + k] = vals[sel]
            csl_pos += k
        sel = grp == 2
        if sel.any():
            asm.fill(idx[sel], vals[sel])

    coo_group = (CooTensor(coo_idx, coo_vals, sharded.shape, validate=False)
                 if coo_nnz else CooTensor.empty(sharded.shape))

    if csl_nnz:
        slice_ptr = np.concatenate(
            [[0], np.cumsum(nnz_present[partition.csl_mask])]
        ).astype(INDEX_DTYPE)
        csl_group = CslGroup(
            shape=sharded.shape,
            mode_order=mode_order,
            slice_ptr=slice_ptr,
            slice_inds=present[partition.csl_mask].astype(INDEX_DTYPE),
            rest_indices=rest_indices,
            values=csl_vals,
        )
        csl_group.validate()
    else:
        csl_group = empty_csl_group(sharded.shape, mode_order)

    bcsf_group: BcsfTensor | None = None
    if asm.nnz:
        bcsf_group = build_bcsf(asm.finish(), mode, config)

    return HbcsfTensor(
        shape=sharded.shape,
        mode_order=mode_order,
        partition=partition,
        coo_group=coo_group,
        csl_group=csl_group,
        bcsf_group=bcsf_group,
        config=config,
    )
