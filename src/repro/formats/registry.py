"""Sparse-format registry: the single source of truth for format knowledge.

Every sparse format the reproduction knows about — the paper's own family
(COO, CSF, B-CSF, HB-CSF, CSL) and the baseline frameworks it compares
against (SPLATT, HiCOO, ParTI, F-COO) — is described by one
:class:`FormatSpec` and registered here.  Consumers never enumerate format
names by hand: the public ``mttkrp()`` dispatch, the GPU simulator, the
benchmark-target registry and the experiment drivers all iterate or look up
this registry, so adding a format is a one-file, one-registration change.

A :class:`FormatSpec` bundles

* the canonical name plus its accepted aliases (one shared normaliser
  replaces the per-module alias dicts that used to live in
  ``core/mttkrp.py`` and ``gpusim/api.py``);
* a ``builder`` producing the format's representation for one root mode;
* the exact CPU ``cpu_kernel`` executing MTTKRP on that representation;
* an optional ``gpusim`` hook returning the simulated
  :class:`~repro.gpusim.metrics.KernelResult` for the format's GPU kernel;
* capability flags (``needs_split_config``, ``per_mode_build``,
  ``requires_singleton_fibers``, ``cpu_supported_orders``) that tell
  consumers what the format can do instead of having them special-case
  names.

:func:`build_plan` is the cached entry to ``builder``: representations are
content-addressed (tensor fingerprint x format x mode x split config) in
:mod:`repro.formats.plan_cache`, so a structure built once is reused across
ALS iterations, experiment figures and bench sweeps.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterator

from repro.formats.plan_cache import (
    PlanBuild,
    config_token,
    plan_cache,
    tensor_fingerprint,
)
from repro.parallel.pool import resolve_backend, resolve_workers
from repro.telemetry import stage
from repro.util.dtypes import dtype_token
from repro.util.errors import ValidationError

__all__ = [
    "DEFAULT_FORMAT",
    "FormatSpec",
    "register_format",
    "unregister_format",
    "canonical_format",
    "get_format",
    "format_names",
    "iter_formats",
    "build_plan",
    "optional_call_params",
]

#: The paper's recommended format and every API's default.
DEFAULT_FORMAT = "hb-csf"


@dataclass(frozen=True)
class FormatSpec:
    """One registered sparse format.

    Attributes
    ----------
    name:
        Canonical (already normalised) format name.
    kind:
        ``"own"`` for the paper's formats, ``"baseline"`` for the compared
        frameworks.
    description:
        One-line human-readable summary (shown by ``repro-bench list
        --formats``).
    aliases:
        Accepted alternative spellings; folded through the shared
        normaliser at registration time.
    builder:
        ``builder(tensor, mode, config) -> representation``.  Formats with
        ``per_mode_build=False`` build one structure covering all modes and
        may ignore ``mode``.
    cpu_kernel:
        ``cpu_kernel(rep, factors, mode, out) -> ndarray`` — the exact
        MTTKRP.  ``None`` marks a format without a CPU execution path
        (no such format is currently registered; CI enforces this).
    gpusim:
        ``gpusim(tensor, mode, rank, device, launch, config, costs,
        memory_model) -> KernelResult`` or ``None`` for CPU-only formats.
    index_words:
        ``index_words(rep) -> int`` storage accounting override; defaults
        to calling ``rep.index_storage_words()``.
    per_mode_build:
        Whether ``builder`` produces one representation *per root mode*
        (SPLATT-style ALLMODE) or a single object covering every mode.
    needs_split_config:
        Whether the builder consumes a :class:`~repro.core.splitting.SplitConfig`
        (and hence whether the config participates in the plan-cache key).
    requires_singleton_fibers:
        CSL's restriction: representable only when every fiber of the root
        mode holds exactly one nonzero.
    cpu_supported_orders:
        Tensor orders the CPU kernel accepts (``None`` = any); ParTI and
        F-COO only support third-order tensors, as in the paper.
    sim_in_bench:
        Whether a ``sim.<name>`` benchmark target should be generated
        (``False`` where it would duplicate another entry's kernel, e.g.
        ParTI's atomic-COO kernel is ``sim.coo``).
    sharder:
        ``sharder(rep, mode, num_workers) -> ShardPlan`` — cuts a built
        representation into row-disjoint worker shards for the threaded
        execution backend (:mod:`repro.parallel`).  ``None`` means the
        format executes serially regardless of the requested backend (the
        baseline frameworks model *their* papers' kernels; parallelising
        them here would measure our partitioner, not their design).
    """

    name: str
    kind: str
    description: str
    aliases: tuple[str, ...] = ()
    builder: Callable | None = None
    cpu_kernel: Callable | None = None
    gpusim: Callable | None = None
    index_words: Callable | None = None
    per_mode_build: bool = True
    needs_split_config: bool = False
    requires_singleton_fibers: bool = False
    cpu_supported_orders: tuple[int, ...] | None = None
    sim_in_bench: bool = True
    sharder: Callable | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("own", "baseline"):
            raise ValidationError(
                f"format kind must be 'own' or 'baseline', got {self.kind!r}")

    # ------------------------------------------------------------------ #
    # capabilities
    # ------------------------------------------------------------------ #
    @property
    def universal(self) -> bool:
        """Usable on any tensor (no order or structure restriction)."""
        return (not self.requires_singleton_fibers
                and self.cpu_supported_orders is None)

    @property
    def supports_threads(self) -> bool:
        """Whether the threaded backend can execute this format."""
        return self.cpu_kernel is not None and self.sharder is not None

    def check_tensor(self, tensor) -> None:
        """Raise when ``tensor`` violates this format's restrictions."""
        if (self.cpu_supported_orders is not None
                and tensor.order not in self.cpu_supported_orders):
            orders = ", ".join(str(o) for o in self.cpu_supported_orders)
            raise ValidationError(
                f"format {self.name!r} supports only order-{orders} tensors "
                f"(got order {tensor.order})")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def build(self, tensor, mode: int, config=None, dtype=None):
        """Build this format's representation (uncached; see :func:`build_plan`).

        ``dtype`` selects the compute dtype stored in the representation's
        value arrays (:mod:`repro.util.dtypes`); builders registered
        without a ``dtype`` parameter — e.g. by older tests — are called
        without it and always build float64.
        """
        if self.builder is None:
            raise ValidationError(f"format {self.name!r} has no builder")
        if dtype is not None and "dtype" in optional_call_params(self.builder):
            return self.builder(tensor, mode, config, dtype=dtype)
        return self.builder(tensor, mode, config)

    def mttkrp(self, rep, factors, mode: int, out=None, *,
               validate: bool = True, dtype=None,
               backend: str | None = None, num_workers: int | None = None):
        """Execute the exact CPU MTTKRP on a built representation.

        ``validate=False`` and ``dtype`` are forwarded only to kernels
        that declare the corresponding keyword (all built-in kernels do);
        a minimal 4-argument kernel registered by external code keeps
        working unchanged.

        ``backend`` / ``num_workers`` select the execution backend
        (``None`` defers to ``REPRO_BACKEND`` / ``REPRO_NUM_WORKERS``).
        The threaded backend is bit-identical to serial and silently falls
        back to serial for formats without a :attr:`sharder` or when only
        one worker is available.
        """
        if self.cpu_kernel is None:
            raise ValidationError(
                f"format {self.name!r} has no CPU MTTKRP kernel")
        with stage("kernel", format=self.name, mode=mode) as sp:
            if (resolve_backend(backend) == "threads"
                    and self.sharder is not None):
                workers = resolve_workers(num_workers)
                if workers > 1:
                    from repro.parallel.execute import threaded_mttkrp

                    sp.set(backend="threads", num_workers=workers)
                    return threaded_mttkrp(self, rep, factors, mode, out,
                                           dtype=dtype, validate=validate,
                                           num_workers=workers)
            sp.set(backend="serial")
            extras = {}
            supported = optional_call_params(self.cpu_kernel)
            if not validate and "validate" in supported:
                extras["validate"] = False
            if dtype is not None and "dtype" in supported:
                extras["dtype"] = dtype
            return self.cpu_kernel(rep, factors, mode, out, **extras)

    def storage_words(self, rep) -> int:
        """32-bit index words of a built representation."""
        if self.index_words is not None:
            return int(self.index_words(rep))
        return int(rep.index_storage_words())


@lru_cache(maxsize=256)
def optional_call_params(fn: Callable) -> frozenset[str]:
    """Keyword parameters a registered callable accepts beyond the core four.

    Inspected once per callable (memoised) so per-call dispatch stays free
    of reflection cost.  Callables whose signature cannot be introspected
    are treated as accepting every extra (``**kwargs`` wrappers).
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return frozenset(("validate", "dtype", "backend", "num_workers"))
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return frozenset(("validate", "dtype", "backend", "num_workers"))
    return frozenset(params) & {"validate", "dtype", "backend", "num_workers"}


_REGISTRY: dict[str, FormatSpec] = {}
_ALIASES: dict[str, str] = {}


def _fold(name: str) -> str:
    """The shared spelling normaliser: case, underscores, spaces."""
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def register_format(spec: FormatSpec, *, overwrite: bool = False) -> FormatSpec:
    """Register ``spec`` under its name and aliases."""
    name = _fold(spec.name)
    if name != spec.name:
        raise ValidationError(
            f"canonical format name {spec.name!r} is not normalised "
            f"(expected {name!r})")
    if not overwrite:
        if name in _REGISTRY:
            raise ValidationError(f"format {name!r} is already registered")
        if name in _ALIASES:
            raise ValidationError(
                f"format name {name!r} collides with an alias of "
                f"{_ALIASES[name]!r}")
    for alias in spec.aliases:
        folded = _fold(alias)
        owner = _ALIASES.get(folded)
        if folded in _REGISTRY and folded != name:
            raise ValidationError(
                f"alias {alias!r} of {name!r} collides with a registered "
                "format name")
        if owner is not None and owner != name and not overwrite:
            raise ValidationError(
                f"alias {alias!r} is already taken by format {owner!r}")
    replaced = _REGISTRY.get(name)
    if replaced is not None:
        # a replaced spec may build differently: its cached reps are stale,
        # and aliases it declared but the new spec does not must not dangle
        plan_cache().discard(format=name)
        for alias in replaced.aliases:
            _ALIASES.pop(_fold(alias), None)
    _REGISTRY[name] = spec
    for alias in spec.aliases:
        _ALIASES[_fold(alias)] = name
    return spec


def unregister_format(name: str) -> None:
    """Remove a format (used by tests exercising registration)."""
    key = _fold(name)
    spec = _REGISTRY.pop(key, None)
    if spec is None:
        raise ValidationError(f"format {name!r} is not registered")
    for alias in spec.aliases:
        _ALIASES.pop(_fold(alias), None)
    plan_cache().discard(format=key)


def canonical_format(name: str) -> str:
    """Resolve any accepted spelling to the canonical registered name."""
    if not isinstance(name, str):
        raise ValidationError(
            f"format name must be a string, got {type(name).__name__}")
    key = _fold(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise ValidationError(
            f"unknown format {name!r}; registered formats: "
            f"{', '.join(_REGISTRY)}")
    return key


def get_format(name: str) -> FormatSpec:
    """Look up the :class:`FormatSpec` for any accepted spelling."""
    return _REGISTRY[canonical_format(name)]


def iter_formats(kind: str | None = None) -> Iterator[FormatSpec]:
    """Specs in registration order, optionally one ``kind``."""
    if kind is not None and kind not in ("own", "baseline"):
        raise ValidationError(
            f"format kind must be 'own' or 'baseline', got {kind!r}")
    for spec in _REGISTRY.values():
        if kind is None or spec.kind == kind:
            yield spec


def format_names(
    kind: str | None = None,
    *,
    cpu: bool = False,
    gpusim: bool = False,
    universal: bool = False,
) -> tuple[str, ...]:
    """Registered canonical names, in registration order.

    Parameters
    ----------
    kind:
        ``"own"`` / ``"baseline"`` filter.
    cpu / gpusim:
        Keep only formats with an exact CPU kernel / a GPU simulation hook.
    universal:
        Keep only formats usable on any tensor (drops CSL's
        singleton-fiber restriction and the order-3-only baselines).
    """
    names = []
    for spec in iter_formats(kind):
        if cpu and spec.cpu_kernel is None:
            continue
        if gpusim and spec.gpusim is None:
            continue
        if universal and not spec.universal:
            continue
        names.append(spec.name)
    return tuple(names)


# --------------------------------------------------------------------- #
# cached building
# --------------------------------------------------------------------- #
def build_plan(tensor, format: str, mode: int, config=None, dtype=None,
               *, use_cache: bool = True) -> PlanBuild:
    """Build (or fetch from the plan cache) one format representation.

    The cache key is ``(tensor fingerprint, format, mode, config, dtype)``
    — content-addressed, so two equal tensors share entries regardless of
    object identity.  Formats with ``per_mode_build=False`` (the ALLMODE
    baselines) share one entry across modes, and the split config / compute
    dtype (:mod:`repro.util.dtypes`) enter the key only for formats whose
    builders consume them — a builder that produces dtype-independent
    representations (COO's mode-major sort) shares one entry across
    dtypes instead of duplicating it.

    Returns a :class:`~repro.formats.plan_cache.PlanBuild` whose
    ``build_seconds`` is the wall-clock cost of the *original* construction
    even on a cache hit — preprocessing accounting (Figures 9-10) stays
    honest while the build itself is amortised.
    """
    spec = get_format(format)
    mode = int(mode)
    if not 0 <= mode < tensor.order:
        raise ValidationError(
            f"mode {mode} out of range for an order-{tensor.order} tensor")
    # Normalise the inputs that do not participate in this format's key, so
    # the builder can never see a value the key ignores (a config passed to
    # a needs_split_config=False format, a dtype passed to a dtype-less
    # builder would otherwise produce cache entries whose content depends
    # on un-keyed inputs).
    if not spec.needs_split_config:
        config = None
    builder_takes_dtype = (spec.builder is not None
                           and "dtype" in optional_call_params(spec.builder))
    if not builder_takes_dtype:
        dtype = None
    key = (
        tensor_fingerprint(tensor),
        spec.name,
        mode if spec.per_mode_build else -1,
        config_token(config) if spec.needs_split_config else "-",
        dtype_token(dtype) if builder_takes_dtype else "-",
    )
    cache = plan_cache()
    if use_cache:
        entry = cache.get(key)
        if entry is not None:
            return PlanBuild(rep=entry.rep, build_seconds=entry.build_seconds,
                             cache_hit=True, key=key)
    with stage("build", format=spec.name, mode=mode) as sp:
        start = time.perf_counter()
        rep = spec.build(tensor, mode, config, dtype)
        build_seconds = time.perf_counter() - start
        sp.set(seconds=build_seconds, cached=use_cache)
    if use_cache:
        cache.put(key, rep, build_seconds)
    return PlanBuild(rep=rep, build_seconds=build_seconds, cache_hit=False,
                     key=key)
