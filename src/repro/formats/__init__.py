"""repro.formats — the unified sparse-format registry and build-plan cache.

Single source of truth for every sparse format in the reproduction:

* :mod:`repro.formats.registry` — :class:`FormatSpec` records (name,
  aliases, builder, CPU kernel, GPU-simulation hook, capability flags) and
  the lookup/enumeration API every consumer dispatches through;
* :mod:`repro.formats.plan_cache` — a content-addressed cache of built
  representations so one tensor x mode x config is built once and reused
  across ALS iterations, experiment figures and bench sweeps;
* :mod:`repro.formats.builtin` — registrations of the paper's formats
  (coo, csf, b-csf, hb-csf, csl) and the baselines (splatt, splatt-tiled,
  hicoo, parti, f-coo).

See ``src/repro/formats/README.md`` for how to register a new format.
"""

from repro.formats.plan_cache import (
    PlanBuild,
    PlanCache,
    clear_plan_cache,
    config_token,
    plan_cache,
    plan_cache_stats,
    tensor_fingerprint,
)
from repro.formats.registry import (
    DEFAULT_FORMAT,
    FormatSpec,
    build_plan,
    canonical_format,
    format_names,
    get_format,
    iter_formats,
    register_format,
    unregister_format,
)
from repro.formats.streaming import (
    streaming_bcsf,
    streaming_csf,
    streaming_csl,
    streaming_hbcsf,
)

# Importing the package registers the built-in formats.
import repro.formats.builtin  # noqa: E402,F401  (registration side effect)

__all__ = [
    "DEFAULT_FORMAT",
    "FormatSpec",
    "register_format",
    "unregister_format",
    "canonical_format",
    "get_format",
    "format_names",
    "iter_formats",
    "build_plan",
    "PlanBuild",
    "PlanCache",
    "plan_cache",
    "plan_cache_stats",
    "clear_plan_cache",
    "tensor_fingerprint",
    "config_token",
    "streaming_csf",
    "streaming_bcsf",
    "streaming_hbcsf",
    "streaming_csl",
]
