"""Setuptools shim.

The execution environment for this reproduction is fully offline and ships
setuptools 65 without the ``wheel`` package, so PEP-660 editable installs
(which must build a wheel) cannot work.  Keeping a ``setup.py`` and omitting
the ``[build-system]`` table from ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which needs nothing beyond setuptools itself.
"""

from setuptools import find_packages, setup

setup(
    name="repro-bcsf",
    version="0.3.0",
    description="Pure-Python reproduction of balanced-CSF (B-CSF / HB-CSF) "
                "sparse-MTTKRP load balancing on GPUs (IPDPS 2019)",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.registry:main",
            "repro-scenarios=repro.scenarios.cli:main",
            "repro-bench=repro.bench.cli:main",
            "repro-telemetry=repro.telemetry.cli:main",
        ],
    },
)
