"""Setuptools shim.

The execution environment for this reproduction is fully offline and ships
setuptools 65 without the ``wheel`` package, so PEP-660 editable installs
(which must build a wheel) cannot work.  Keeping a ``setup.py`` and omitting
the ``[build-system]`` table from ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which needs nothing beyond setuptools itself.
"""

from setuptools import setup

setup()
