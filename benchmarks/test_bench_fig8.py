"""Benchmark: regenerate Figure 8 (ParTI-COO vs B-CSF vs HB-CSF)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig8


def test_bench_fig8(benchmark):
    """Re-run the Figure 8 driver and record its rows."""
    result = run_once(benchmark, fig8.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
