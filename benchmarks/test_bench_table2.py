"""Benchmark: regenerate Table II (GPU-CSF performance and load-imbalance columns)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import table2


def test_bench_table2(benchmark):
    """Re-run the Table II driver and record its rows."""
    result = run_once(benchmark, table2.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
