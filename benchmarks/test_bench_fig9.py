"""Benchmark: regenerate Figure 9 (pre-processing cost ratios)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig9


def test_bench_fig9(benchmark):
    """Re-run the Figure 9 driver and record its rows."""
    result = run_once(benchmark, fig9.run, scale=BENCH_SCALE)
    attach_rows(benchmark, result)
    assert result.rows
