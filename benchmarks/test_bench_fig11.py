"""Benchmark: regenerate Figure 11 (speedup over SPLATT-CPU-tiled)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig11


def test_bench_fig11(benchmark):
    """Re-run the Figure 11 driver and record its rows."""
    result = run_once(benchmark, fig11.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
