"""Benchmark: regenerate Figure 12 (speedup over SPLATT-CPU-nontiled)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig12


def test_bench_fig12(benchmark):
    """Re-run the Figure 12 driver and record its rows."""
    result = run_once(benchmark, fig12.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
