"""Micro-benchmarks of the host-side kernels and format builders.

Unlike the per-figure benchmarks (which time the experiment drivers), these
measure the real wall-clock cost of the library's own building blocks:
format construction (the pre-processing the paper's Figures 9/10 reason
about) and the exact MTTKRP kernels.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_RANK
from repro.core.bcsf import build_bcsf
from repro.core.hybrid import build_hbcsf
from repro.core.mttkrp import mttkrp
from repro.kernels.coo_mttkrp import coo_mttkrp
from repro.kernels.csf_mttkrp import csf_mttkrp
from repro.tensor.csf import build_csf
from repro.util.prng import default_rng


def _factors(shape, rank=BENCH_RANK, seed=0):
    rng = default_rng(seed)
    return [rng.standard_normal((s, rank)) for s in shape]


class TestFormatConstruction:
    def test_bench_build_csf(self, benchmark, deli_tensor):
        csf = benchmark(build_csf, deli_tensor, 0)
        assert csf.nnz == deli_tensor.nnz

    def test_bench_build_bcsf(self, benchmark, darpa_tensor):
        bcsf = benchmark(build_bcsf, darpa_tensor, 0)
        assert bcsf.max_nnz_per_fiber() <= 128

    def test_bench_build_hbcsf(self, benchmark, frm_tensor):
        hb = benchmark(build_hbcsf, frm_tensor, 0)
        assert hb.nnz == frm_tensor.nnz


class TestExactMttkrp:
    def test_bench_coo_mttkrp(self, benchmark, deli_tensor):
        factors = _factors(deli_tensor.shape)
        out = benchmark(coo_mttkrp, deli_tensor, factors, 0)
        assert np.isfinite(out).all()

    def test_bench_csf_mttkrp(self, benchmark, deli_tensor):
        factors = _factors(deli_tensor.shape)
        csf = build_csf(deli_tensor, 0)
        out = benchmark(csf_mttkrp, csf, factors)
        assert np.isfinite(out).all()

    def test_bench_hbcsf_mttkrp(self, benchmark, nell2_tensor):
        factors = _factors(nell2_tensor.shape)
        hb = build_hbcsf(nell2_tensor, 0)
        out = benchmark(hb.mttkrp, factors)
        assert np.isfinite(out).all()

    def test_bench_public_api_mttkrp(self, benchmark, darpa_tensor):
        factors = _factors(darpa_tensor.shape)
        out = benchmark(mttkrp, darpa_tensor, factors, 0, "hb-csf")
        assert out.shape == (darpa_tensor.shape[0], BENCH_RANK)
