"""Micro-benchmarks of the host-side kernels and format builders.

Unlike the per-figure benchmarks (which time the experiment drivers), these
measure the real wall-clock cost of the library's own building blocks.
Every case routes through the :mod:`repro.bench` target registry
(``run_target``) so pytest-benchmark and ``repro-bench`` time exactly the
same closures — no duplicated setup/timing logic.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_target


class TestFormatConstruction:
    def test_bench_build_csf(self, benchmark, deli_tensor):
        csf = run_target(benchmark, "build.csf", deli_tensor)
        assert csf.nnz == deli_tensor.nnz

    def test_bench_build_bcsf(self, benchmark, darpa_tensor):
        bcsf = run_target(benchmark, "build.b-csf", darpa_tensor)
        assert bcsf.max_nnz_per_fiber() <= 128

    def test_bench_build_hbcsf(self, benchmark, frm_tensor):
        hb = run_target(benchmark, "build.hb-csf", frm_tensor)
        assert hb.nnz == frm_tensor.nnz


class TestExactMttkrp:
    @pytest.mark.parametrize("target", ["kernel.coo", "kernel.coo-scatter",
                                        "kernel.coo-sorted",
                                        "kernel.coo-bincount"])
    def test_bench_coo_mttkrp(self, benchmark, deli_tensor, target):
        out = run_target(benchmark, target, deli_tensor)
        assert out.shape[0] == deli_tensor.shape[0]
        assert np.isfinite(out).all()

    def test_bench_csf_mttkrp(self, benchmark, deli_tensor):
        out = run_target(benchmark, "kernel.csf", deli_tensor)
        assert out.shape[0] == deli_tensor.shape[0]
        assert np.isfinite(out).all()

    def test_bench_bcsf_mttkrp(self, benchmark, darpa_tensor):
        out = run_target(benchmark, "kernel.b-csf", darpa_tensor)
        assert out.shape[0] == darpa_tensor.shape[0]
        assert np.isfinite(out).all()

    def test_bench_hbcsf_mttkrp(self, benchmark, nell2_tensor):
        out = run_target(benchmark, "kernel.hb-csf", nell2_tensor)
        assert out.shape[0] == nell2_tensor.shape[0]
        assert np.isfinite(out).all()

    def test_bench_public_api_mttkrp(self, benchmark, darpa_tensor):
        out = run_target(benchmark, "kernel.dispatch", darpa_tensor)
        assert out.shape[0] == darpa_tensor.shape[0]
        assert np.isfinite(out).all()
