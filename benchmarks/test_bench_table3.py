"""Benchmark: regenerate Table III (dataset inventory)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import table3


def test_bench_table3(benchmark):
    """Re-run the Table III driver and record its rows."""
    result = run_once(benchmark, table3.run, scale=BENCH_SCALE)
    attach_rows(benchmark, result)
    assert result.rows
