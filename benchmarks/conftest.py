"""Shared fixtures and helpers for the benchmark harness.

Every table / figure of the paper's evaluation has one benchmark module
(``test_bench_table2.py`` ... ``test_bench_fig16.py``) that re-runs the
corresponding experiment driver under pytest-benchmark and attaches the
regenerated rows to the benchmark record (``--benchmark-json`` keeps them).
Additional modules benchmark the underlying kernels and the ablations called
out in DESIGN.md.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE`` (default ``0.5``) to trade fidelity for runtime.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.targets import get_target
from repro.tensor.datasets import load_dataset

#: dataset scale used by the benchmark harness (1.0 = the scale used for
#: EXPERIMENTS.md; 0.5 keeps the full harness under a couple of minutes).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: rank used throughout (the paper's R).
BENCH_RANK = 32


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark.

    The experiment drivers are deterministic and relatively slow, so a single
    round is both sufficient and honest; kernel micro-benchmarks use the
    default calibration instead.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


def run_target(benchmark, target_name, tensor, rank=BENCH_RANK):
    """Benchmark a registered :mod:`repro.bench` target on ``tensor``.

    Setup (format construction, factor generation) happens outside the
    timed region, exactly as in ``repro-bench`` — the pytest harness and
    the CLI share one definition of what each measurement means.  The
    target name is recorded in ``extra_info`` so ``--benchmark-json``
    output can be joined against ``BENCH_*.json`` artifacts.
    """
    target = get_target(target_name)
    fn = target.setup(tensor, rank)
    benchmark.extra_info["bench_target"] = target_name
    return benchmark(fn)


def attach_rows(benchmark, result) -> None:
    """Store an ExperimentResult's rows/summary in the benchmark record."""
    benchmark.extra_info["experiment_id"] = result.experiment_id
    benchmark.extra_info["summary"] = result.summary
    benchmark.extra_info["rows"] = result.rows


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def darpa_tensor():
    return load_dataset("darpa", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def nell2_tensor():
    return load_dataset("nell2", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def deli_tensor():
    return load_dataset("deli", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def frm_tensor():
    return load_dataset("fr_m", scale=BENCH_SCALE)
