"""Benchmark: regenerate Figure 13 (speedup over HiCOO-CPU)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig13


def test_bench_fig13(benchmark):
    """Re-run the Figure 13 driver and record its rows."""
    result = run_once(benchmark, fig13.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
