"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are *what-if* sweeps run through the GPU execution model:

* fiber-split threshold (the paper picks 128 empirically, Section VI-B);
* thread-block size (the paper uses 512);
* hybrid partition rule (HB-CSF vs. "B-CSF only" vs. "COO only");
* sensitivity of slc-split to the atomic cost.

Each benchmark stores the sweep results in ``extra_info`` so the numbers
land in the benchmark JSON alongside the timings.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_RANK, run_once
from repro.core.splitting import SplitConfig
from repro.gpusim.api import simulate_mttkrp
from repro.gpusim.costs import CostModel
from repro.gpusim.device import TESLA_P100
from repro.gpusim.launch import LaunchConfig


def test_bench_ablation_fiber_threshold(benchmark, darpa_tensor):
    """Sweep the fbr-split threshold on the most skewed dataset."""
    thresholds = (8, 32, 128, 512, 2048, None)

    def sweep():
        return {
            str(th): simulate_mttkrp(darpa_tensor, 0, BENCH_RANK, "b-csf",
                                     config=SplitConfig(fiber_threshold=th)).time_seconds
            for th in thresholds
        }

    times = run_once(benchmark, sweep)
    benchmark.extra_info["threshold_times_s"] = times
    # the paper's default must not be far from the best configuration
    assert times["128"] <= 1.25 * min(times.values())


def test_bench_ablation_block_size(benchmark, nell2_tensor):
    """Sweep the thread-block size used by the B-CSF kernel."""
    sizes = (128, 256, 512, 1024)

    def sweep():
        return {
            str(s): simulate_mttkrp(nell2_tensor, 0, BENCH_RANK, "b-csf",
                                    launch=LaunchConfig(threads_per_block=s),
                                    config=SplitConfig(128, s)).time_seconds
            for s in sizes
        }

    times = run_once(benchmark, sweep)
    benchmark.extra_info["block_size_times_s"] = times
    assert times["512"] <= 1.5 * min(times.values())


def test_bench_ablation_hybrid_rule(benchmark, frm_tensor, darpa_tensor):
    """HB-CSF vs. single-format executions on two opposite regimes."""

    def sweep():
        out = {}
        for name, tensor in (("fr_m", frm_tensor), ("darpa", darpa_tensor)):
            out[name] = {
                fmt: simulate_mttkrp(tensor, 0, BENCH_RANK, fmt).time_seconds
                for fmt in ("hb-csf", "b-csf", "parti")
            }
        return out

    times = run_once(benchmark, sweep)
    benchmark.extra_info["per_format_times_s"] = times
    for per_format in times.values():
        assert per_format["hb-csf"] <= 1.05 * min(per_format.values())


def test_bench_ablation_atomic_cost(benchmark, nell2_tensor):
    """slc-split's extra atomics must stay cheap even if atomics get pricier."""

    def sweep():
        from dataclasses import replace

        out = {}
        for atomic in (4.0, 16.0, 64.0, 128.0):
            device = replace(TESLA_P100, atomic_cycles=atomic)
            costs = CostModel(atomic_row=atomic)
            split = simulate_mttkrp(nell2_tensor, 0, BENCH_RANK, "b-csf",
                                    device=device, costs=costs).time_seconds
            unsplit = simulate_mttkrp(nell2_tensor, 0, BENCH_RANK, "b-csf",
                                      device=device, costs=costs,
                                      config=SplitConfig.disabled()).time_seconds
            out[str(atomic)] = {"split": split, "unsplit": unsplit}
        return out

    times = run_once(benchmark, sweep)
    benchmark.extra_info["atomic_sensitivity"] = times
    # "the cost of the extra atomic operations is well tolerated by the
    # increase in concurrency" (Section IV-A) — even at 8x the atomic cost
    for entry in times.values():
        assert entry["split"] < entry["unsplit"]
