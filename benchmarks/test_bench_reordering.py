"""Ablation: does index relabelling (future work, Section VIII) compose with
the formats in this library?

The paper's conclusion lists reordering as complementary future work.  This
benchmark measures, for a skewed tensor, the effect of density-based and
random relabelling on (a) HiCOO's block count / storage and (b) the
simulated HB-CSF execution time — confirming that relabelling slices does
not disturb the HB-CSF result (its grouping is label-invariant) while it
does change blocked-format storage.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_RANK, run_once
from repro.baselines.hicoo import build_hicoo
from repro.gpusim.api import simulate_mttkrp
from repro.tensor.reorder import random_relabel, relabel_mode_by_density, zorder_sort


def test_bench_reordering_ablation(benchmark, nell2_tensor):
    def sweep():
        variants = {
            "original": nell2_tensor,
            "density-relabelled": relabel_mode_by_density(nell2_tensor, 0).apply(nell2_tensor),
            "random-relabelled": random_relabel(nell2_tensor, rng=1).apply(nell2_tensor),
            "zorder-sorted": zorder_sort(nell2_tensor, bits=12),
        }
        out = {}
        for name, tensor in variants.items():
            hicoo = build_hicoo(tensor, block_bits=7)
            sim = simulate_mttkrp(tensor, 0, BENCH_RANK, "hb-csf")
            out[name] = {
                "hicoo_blocks": hicoo.num_blocks,
                "hicoo_words_per_nnz": hicoo.index_storage_words() / max(tensor.nnz, 1),
                "hbcsf_time_s": sim.time_seconds,
            }
        return out

    results = run_once(benchmark, sweep)
    benchmark.extra_info["reordering"] = results
    base = results["original"]["hbcsf_time_s"]
    # HB-CSF's behaviour is label-invariant up to scheduling noise
    for name, entry in results.items():
        assert entry["hbcsf_time_s"] <= base * 1.25
    # z-order storage order never changes the block inventory
    assert (results["zorder-sorted"]["hicoo_blocks"]
            == results["original"]["hicoo_blocks"])
