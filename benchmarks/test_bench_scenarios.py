"""Benchmarks for the scenario subsystem.

Measures raw generator throughput for every registered family at a fixed
budget, and the cache speedup (materialize-from-npz vs regenerate) that
repeated experiment runs rely on.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.scenarios import (
    ScenarioCache,
    generator_names,
    iter_suite,
    materialize,
    parse_spec,
)

BENCH_NNZ = int(60_000 * BENCH_SCALE)
BENCH_SHAPE = (2_000, 1_500, 2_500)


def _spec(generator: str) -> dict:
    return {"generator": generator, "shape": list(BENCH_SHAPE),
            "nnz": BENCH_NNZ, "seed": 42}


class TestGeneratorThroughput:
    @pytest.mark.parametrize("generator", generator_names())
    def test_bench_generate(self, benchmark, generator):
        spec = parse_spec(_spec(generator))
        tensor = benchmark(materialize, spec)
        assert 0 < tensor.nnz <= BENCH_NNZ
        benchmark.extra_info["nnz"] = tensor.nnz


class TestCache:
    def test_bench_cold_miss(self, benchmark, tmp_path):
        spec = parse_spec(_spec("power_law"))

        def generate_into_fresh_cache():
            cache = ScenarioCache(tmp_path / "cold")
            cache.clear()
            return materialize(spec, cache)

        tensor = benchmark(generate_into_fresh_cache)
        assert tensor.nnz > 0

    def test_bench_warm_hit(self, benchmark, tmp_path):
        spec = parse_spec(_spec("power_law"))
        cache = ScenarioCache(tmp_path / "warm")
        generated = materialize(spec, cache)
        loaded = benchmark(materialize, spec, cache)
        assert loaded == generated


class TestSuites:
    def test_bench_imbalance_sweep(self, benchmark):
        rows = benchmark(lambda: [
            (name, t.nnz)
            for name, t in iter_suite("imbalance_sweep", scale=BENCH_SCALE)
        ])
        assert len(rows) == 5
        benchmark.extra_info["rows"] = rows
