"""Benchmark: regenerate Figure 5 (fiber/slice splitting gains)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig5


def test_bench_fig5(benchmark):
    """Re-run the Figure 5 driver and record its rows."""
    result = run_once(benchmark, fig5.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
