"""Benchmark: regenerate Figure 16 (index storage per format)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig16


def test_bench_fig16(benchmark):
    """Re-run the Figure 16 driver and record its rows."""
    result = run_once(benchmark, fig16.run, scale=BENCH_SCALE)
    attach_rows(benchmark, result)
    assert result.rows
