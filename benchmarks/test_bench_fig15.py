"""Benchmark: regenerate Figure 15 (speedup over FCOO-GPU)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig15


def test_bench_fig15(benchmark):
    """Re-run the Figure 15 driver and record its rows."""
    result = run_once(benchmark, fig15.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
