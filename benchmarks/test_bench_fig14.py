"""Benchmark: regenerate Figure 14 (speedup over ParTI-GPU)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig14


def test_bench_fig14(benchmark):
    """Re-run the Figure 14 driver and record its rows."""
    result = run_once(benchmark, fig14.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
