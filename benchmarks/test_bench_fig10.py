"""Benchmark: regenerate Figure 10 (iterations to amortise pre-processing)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig10


def test_bench_fig10(benchmark):
    """Re-run the Figure 10 driver and record its rows."""
    result = run_once(benchmark, fig10.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
