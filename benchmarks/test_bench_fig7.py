"""Benchmark: regenerate Figure 7 (SPLATT vs B-CSF on shortest/longest modes)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig7


def test_bench_fig7(benchmark):
    """Re-run the Figure 7 driver and record its rows."""
    result = run_once(benchmark, fig7.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
