"""Benchmark: regenerate Figure 6 (GFLOPs vs stdev of nonzeros per fiber)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_RANK, attach_rows, run_once
from repro.experiments import fig6


def test_bench_fig6(benchmark):
    """Re-run the Figure 6 driver and record its rows."""
    result = run_once(benchmark, fig6.run, scale=BENCH_SCALE, rank=BENCH_RANK)
    attach_rows(benchmark, result)
    assert result.rows
